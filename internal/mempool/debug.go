package mempool

import (
	"fmt"
	"io"

	"fxdist/internal/obs"
)

// /debug/mempool serves every registered pool's counters, and the
// package feeds its recycle totals to obs so the cost profiler's
// per-stage alloc deltas can be read next to how much demand the pools
// absorbed (see /debug/hotpath).

type mempoolDoc struct {
	RecycledBytes uint64       `json:"recycled_bytes"`
	RecycledSlabs uint64       `json:"recycled_slabs"`
	Pools         []PoolReport `json:"pools"`
}

func init() {
	obs.SetRecycleCounter(RecycledTotals)
	// Callback gauges so the pool's absorption shows up in /metrics and
	// federates across nodes (fxtop's "recycle rate" = slabs/gets).
	r := obs.Default()
	r.GaugeFunc("fxdist_mempool_recycled_bytes",
		"Bytes served from pooled slabs instead of fresh allocations, process lifetime.",
		func() float64 { b, _ := RecycledTotals(); return float64(b) })
	r.GaugeFunc("fxdist_mempool_recycled_slabs",
		"Slabs served from pools instead of fresh allocations, process lifetime.",
		func() float64 { _, s := RecycledTotals(); return float64(s) })
	r.GaugeFunc("fxdist_mempool_gets",
		"Total pool Get calls across every registered pool.",
		func() float64 {
			var gets uint64
			for _, p := range Report() {
				gets += p.Gets
			}
			return float64(gets)
		})
	obs.RegisterDebugHandler("/debug/mempool", "slab pool stats: per-size-class gets/puts/misses and recycled bytes/slabs", obs.DebugEndpoint(
		func() (any, error) {
			b, o := RecycledTotals()
			return mempoolDoc{RecycledBytes: b, RecycledSlabs: o, Pools: Report()}, nil
		},
		func(w io.Writer, doc any) {
			d := doc.(mempoolDoc)
			fmt.Fprintf(w, "recycled: %d bytes in %d slabs\n", d.RecycledBytes, d.RecycledSlabs)
			fmt.Fprintf(w, "%-16s %10s %10s %10s %10s %8s %16s\n",
				"pool", "gets", "misses", "oversize", "puts", "drops", "recycled bytes")
			for _, p := range d.Pools {
				fmt.Fprintf(w, "%-16s %10d %10d %10d %10d %8d %16d\n",
					p.Name, p.Gets, p.Misses, p.Oversize, p.Puts, p.Drops, p.RecycledBytes)
			}
		},
	))
}
