package mempool

import (
	"fmt"
	"io"

	"fxdist/internal/obs"
)

// /debug/mempool serves every registered pool's counters, and the
// package feeds its recycle totals to obs so the cost profiler's
// per-stage alloc deltas can be read next to how much demand the pools
// absorbed (see /debug/hotpath).

type mempoolDoc struct {
	RecycledBytes uint64       `json:"recycled_bytes"`
	RecycledSlabs uint64       `json:"recycled_slabs"`
	Pools         []PoolReport `json:"pools"`
}

func init() {
	obs.SetRecycleCounter(RecycledTotals)
	obs.RegisterDebugHandler("/debug/mempool", obs.DebugEndpoint(
		func() (any, error) {
			b, o := RecycledTotals()
			return mempoolDoc{RecycledBytes: b, RecycledSlabs: o, Pools: Report()}, nil
		},
		func(w io.Writer, doc any) {
			d := doc.(mempoolDoc)
			fmt.Fprintf(w, "recycled: %d bytes in %d slabs\n", d.RecycledBytes, d.RecycledSlabs)
			fmt.Fprintf(w, "%-16s %10s %10s %10s %10s %8s %16s\n",
				"pool", "gets", "misses", "oversize", "puts", "drops", "recycled bytes")
			for _, p := range d.Pools {
				fmt.Fprintf(w, "%-16s %10d %10d %10d %10d %8d %16d\n",
					p.Name, p.Gets, p.Misses, p.Oversize, p.Puts, p.Drops, p.RecycledBytes)
			}
		},
	))
}
