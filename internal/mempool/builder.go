package mempool

import "unsafe"

// Chunk sizing for RecordBuilder arenas. Byte chunks hold copied field
// strings; field chunks hold the []string backing arrays records slice
// into. Strings larger than an eighth of a chunk get their own
// allocation so one outlier cannot waste most of a chunk.
const (
	byteChunk  = 64 << 10
	fieldChunk = 8 << 10

	// Owned-mode chunks start small and double per chunk up to the
	// maxima above, so a scan that yields few matches does not pay a
	// full-size arena up front. Pooled chunks stay full-size: they
	// recycle, so their footprint amortises across queries.
	byteChunkMin  = 1 << 10
	fieldChunkMin = 128
)

// Shared arena-chunk pools for pooled builders. Separate from Frames
// so /debug/mempool attributes arena traffic on its own row.
var (
	arenaBytes  = NewBytesPool("arena.bytes")
	arenaFields = NewSlicePool[string]("arena.fields")
)

// RecordBuilder carves records and their field strings out of chunked
// arenas, replacing the per-record + per-field allocations of a naive
// decode with one allocation per ~64KB of string data and one per ~8k
// fields. A builder is single-goroutine.
//
// In owned mode (pooled=false) chunks come from the heap and their
// lifetime is the garbage collector's problem: records built by the
// builder stay valid forever and Release is a no-op. In pooled mode
// chunks are drawn from the arena pools and Release returns every
// chunk — after Release, all records built by the builder are invalid.
type RecordBuilder struct {
	pooled bool

	bytes  []byte   // current byte chunk, append-only
	fields []string // current field chunk, carve-only

	// Next owned-mode chunk sizes; double per chunk up to the maxima.
	nextBytes  int
	nextFields int

	// Chunks handed out to records, returned to the pools on Release.
	// Only tracked in pooled mode.
	usedBytes  [][]byte
	usedFields [][]string
}

// NewRecordBuilder returns a builder. pooled selects leased arena
// chunks (caller must Release) over garbage-collected ones.
func NewRecordBuilder(pooled bool) *RecordBuilder {
	return &RecordBuilder{pooled: pooled}
}

// Fields returns a zeroed []string of length n carved from the field
// arena, to be filled as one record's backing.
func (b *RecordBuilder) Fields(n int) []string {
	if n > fieldChunk {
		// Degenerate record wider than a chunk: own allocation,
		// dropped to the GC on Release.
		return make([]string, n)
	}
	if len(b.fields)+n > cap(b.fields) {
		if b.pooled {
			if b.fields != nil {
				b.usedFields = append(b.usedFields, b.fields)
			}
			b.fields = arenaFields.Get(fieldChunk)[:0]
		} else {
			sz := b.nextFields
			if sz == 0 {
				sz = fieldChunkMin
			}
			if sz < n {
				sz = n
			}
			b.fields = make([]string, 0, sz)
			if sz*2 <= fieldChunk {
				b.nextFields = sz * 2
			} else {
				b.nextFields = fieldChunk
			}
		}
	}
	off := len(b.fields)
	b.fields = b.fields[:off+n]
	// Restrict capacity so an append on the record cannot clobber the
	// next record's fields. Pooled chunks were cleared on Put, so the
	// slots are zero either way.
	return b.fields[off : off+n : off+n]
}

// Bytes copies src into the byte arena and returns it as a string
// view. The view stays valid until Release (pooled mode) or forever
// (owned mode).
func (b *RecordBuilder) Bytes(src []byte) string {
	n := len(src)
	if n == 0 {
		return ""
	}
	if n > byteChunk/8 {
		return string(src)
	}
	if len(b.bytes)+n > cap(b.bytes) {
		if b.pooled {
			if b.bytes != nil {
				b.usedBytes = append(b.usedBytes, b.bytes)
			}
			b.bytes = arenaBytes.Get(byteChunk)[:0]
		} else {
			sz := b.nextBytes
			if sz == 0 {
				sz = byteChunkMin
			}
			if sz < n {
				sz = n
			}
			b.bytes = make([]byte, 0, sz)
			if sz*2 <= byteChunk {
				b.nextBytes = sz * 2
			} else {
				b.nextBytes = byteChunk
			}
		}
	}
	off := len(b.bytes)
	b.bytes = append(b.bytes, src...)
	v := b.bytes[off : off+n : off+n]
	return unsafe.String(&v[0], n)
}

// Release returns pooled chunks to the arenas. After Release every
// record built by this builder is invalid. No-op in owned mode.
func (b *RecordBuilder) Release() {
	if b == nil || !b.pooled {
		return
	}
	for _, c := range b.usedBytes {
		arenaBytes.Put(c)
	}
	if b.bytes != nil {
		arenaBytes.Put(b.bytes)
	}
	for _, c := range b.usedFields {
		arenaFields.Put(c)
	}
	if b.fields != nil {
		arenaFields.Put(b.fields)
	}
	b.usedBytes, b.usedFields, b.bytes, b.fields = nil, nil, nil, nil
}
