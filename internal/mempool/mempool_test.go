package mempool

import (
	"fmt"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 24, numClasses - 1}, {1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetPutRecycles(t *testing.T) {
	p := NewBytesPool("test.bytes")
	b := p.Get(100)
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("Get(100): len=%d cap=%d, want 100/128", len(b), cap(b))
	}
	p.Put(b)
	// sync.Pool deliberately drops a fraction of Puts under the race
	// detector, so retry until a recycled slab is observed.
	recycled := false
	for i := 0; i < 50 && !recycled; i++ {
		b2 := p.Get(120)
		if cap(b2) != 128 {
			t.Fatalf("Get(120): cap=%d, want 128", cap(b2))
		}
		recycled = p.Stats().Gets > 0
		p.Put(b2)
	}
	st := p.Stats()
	if !recycled {
		t.Fatalf("stats = %+v, no Get ever recycled", st)
	}
	if st.Misses < 1 || st.Gets != 1 || st.Puts < 2 {
		t.Fatalf("stats = %+v, want ≥1 miss, 1 get, ≥2 puts", st)
	}
	if st.RecycledBytes != 128 {
		t.Fatalf("recycled bytes = %d, want 128", st.RecycledBytes)
	}
}

func TestPutForeignCapDropped(t *testing.T) {
	p := NewBytesPool("test.foreign")
	p.Put(make([]byte, 100)) // cap 100: not a class size
	if st := p.Stats(); st.Drops != 1 || st.Puts != 0 {
		t.Fatalf("stats = %+v, want 1 drop, 0 puts", st)
	}
}

func TestOversizeBypassesPool(t *testing.T) {
	p := NewBytesPool("test.oversize")
	b := p.Get(1<<24 + 1)
	if len(b) != 1<<24+1 {
		t.Fatalf("oversize len = %d", len(b))
	}
	if st := p.Stats(); st.Oversize != 1 {
		t.Fatalf("stats = %+v, want 1 oversize", st)
	}
}

func TestNilPoolPassThrough(t *testing.T) {
	var p *SlicePool[string]
	s := p.Get(10)
	if len(s) != 10 {
		t.Fatalf("nil pool Get(10) len = %d", len(s))
	}
	p.Put(s) // must not panic
}

func TestPointerPoolClearsOnPut(t *testing.T) {
	p := NewSlicePool[string]("test.strings")
	s := p.Get(64)
	for i := range s {
		s[i] = "stale"
	}
	p.Put(s)
	s2 := p.Get(64)
	for i, v := range s2 {
		if v != "" {
			t.Fatalf("slot %d not cleared: %q", i, v)
		}
	}
}

func TestAppendOneGrowsThroughPool(t *testing.T) {
	p := NewSlicePool[int]("test.appendone")
	var s []int
	for i := 0; i < 1000; i++ {
		s = p.AppendOne(s, i)
	}
	if len(s) != 1000 || cap(s) != 1024 {
		t.Fatalf("len=%d cap=%d, want 1000/1024", len(s), cap(s))
	}
	for i, v := range s {
		if v != i {
			t.Fatalf("s[%d] = %d after growth", i, v)
		}
	}
	st := p.Stats()
	if st.Puts == 0 {
		t.Fatalf("growth never returned outgrown slabs: %+v", st)
	}
	// Nil pool degrades to plain append.
	var np *SlicePool[int]
	if s2 := np.AppendOne(nil, 7); len(s2) != 1 || s2[0] != 7 {
		t.Fatalf("nil-pool AppendOne = %v", s2)
	}
}

func TestRecordBuilderOwned(t *testing.T) {
	b := NewRecordBuilder(false)
	var recs [][]string
	for i := 0; i < 1000; i++ {
		r := b.Fields(3)
		for j := range r {
			r[j] = b.Bytes([]byte(fmt.Sprintf("val-%d-%d", i, j)))
		}
		recs = append(recs, r)
	}
	b.Release() // no-op in owned mode; records stay valid
	for i, r := range recs {
		for j := range r {
			want := fmt.Sprintf("val-%d-%d", i, j)
			if r[j] != want {
				t.Fatalf("rec %d field %d = %q, want %q", i, j, r[j], want)
			}
		}
	}
}

func TestRecordBuilderPooledReleaseReturnsChunks(t *testing.T) {
	b := NewRecordBuilder(true)
	before := arenaBytes.Stats()
	r := b.Fields(2)
	r[0] = b.Bytes([]byte("alpha"))
	r[1] = b.Bytes([]byte("beta"))
	if r[0] != "alpha" || r[1] != "beta" {
		t.Fatalf("record = %v", r)
	}
	b.Release()
	after := arenaBytes.Stats()
	if after.Puts <= before.Puts {
		t.Fatalf("Release returned no byte chunks: before %+v after %+v", before, after)
	}
	// A second builder reuses the chunk. sync.Pool deliberately drops
	// a fraction of Puts under the race detector, so retry until a
	// recycled chunk is observed.
	recycled := false
	for i := 0; i < 50 && !recycled; i++ {
		b2 := NewRecordBuilder(true)
		_ = b2.Bytes([]byte("gamma"))
		recycled = arenaBytes.Stats().Gets > before.Gets
		b2.Release()
	}
	if !recycled {
		t.Fatalf("no builder recycled a chunk: %+v", arenaBytes.Stats())
	}
}

func TestBuilderFieldsCapRestricted(t *testing.T) {
	b := NewRecordBuilder(false)
	r1 := b.Fields(2)
	r2 := b.Fields(2)
	r1 = append(r1, "overflow") // must not clobber r2
	_ = r1
	if r2[0] != "" || r2[1] != "" {
		t.Fatalf("append on r1 clobbered r2: %v", r2)
	}
}

func TestReportIncludesRegisteredPools(t *testing.T) {
	name := "test.report"
	p := NewBytesPool(name)
	p.Put(p.Get(64))
	found := false
	for _, r := range Report() {
		if r.Name == name {
			found = true
			if r.Puts != 1 {
				t.Fatalf("report row = %+v", r)
			}
		}
	}
	if !found {
		t.Fatalf("pool %q missing from Report()", name)
	}
}
