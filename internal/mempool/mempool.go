// Package mempool provides per-size-class buffer pools for the
// retrieval hot path — the DPDK mbuf idiom: a fixed ladder of
// power-of-two size classes, each backed by a sync.Pool, so steady-state
// traffic recycles slabs instead of allocating them. Pools are typed
// ([]byte wire frames, []string field arenas, record-header slices) and
// every pool keeps get/put/miss counters that feed /debug/mempool and
// the cost profiler's recycled-vs-allocated attribution.
//
// All pool methods are nil-safe: a nil *SlicePool allocates fresh
// slices on Get and drops them on Put, which is how WithoutMemPool
// turns pooling off per cluster without branching at every call site.
package mempool

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	// minShift..maxShift bound the class ladder: capacities run from
	// 1<<minShift to 1<<maxShift elements. Requests above the ceiling
	// fall through to plain make and are never pooled (counted as
	// oversize); requests below the floor round up to the smallest
	// class.
	minShift   = 6  // 64 elements
	maxShift   = 24 // 16Mi elements
	numClasses = maxShift - minShift + 1
)

// classFor returns the index of the smallest class holding n elements,
// or -1 when n exceeds the largest class.
func classFor(n int) int {
	if n <= 1<<minShift {
		return 0
	}
	c := bits.Len(uint(n-1)) - minShift
	if c >= numClasses {
		return -1
	}
	return c
}

// classOf returns the class index whose capacity is exactly c, or -1
// for foreign capacities (not a power of two, or out of range) — those
// are dropped on Put rather than poisoning a class with short slabs.
func classOf(c int) int {
	if c <= 0 || c&(c-1) != 0 {
		return -1
	}
	s := bits.TrailingZeros(uint(c))
	if s < minShift || s > maxShift {
		return -1
	}
	return s - minShift
}

// Stats is a point-in-time snapshot of one pool's counters.
type Stats struct {
	// Gets counts Get calls served from the pool (recycled slabs).
	Gets uint64 `json:"gets"`
	// Misses counts Get calls that allocated because the class was
	// empty.
	Misses uint64 `json:"misses"`
	// Oversize counts Get calls above the largest class (plain make,
	// never pooled).
	Oversize uint64 `json:"oversize"`
	// Puts counts slabs accepted back into a class.
	Puts uint64 `json:"puts"`
	// Drops counts Put calls rejected for a foreign capacity.
	Drops uint64 `json:"drops"`
	// RecycledBytes estimates the bytes served from recycled slabs
	// (class capacity × element size, summed over pool hits).
	RecycledBytes uint64 `json:"recycled_bytes"`
}

// SlicePool is a ladder of power-of-two size classes for []T slabs.
// Get returns a slice of the requested length whose capacity is the
// class size; Put returns it for reuse. Pools holding pointerful
// elements are cleared on Put so stale headers cannot retain dead
// heap. A nil *SlicePool is a valid pass-through: Get allocates, Put
// drops.
type SlicePool[T any] struct {
	name     string
	clear    bool
	elemSize uintptr
	classes  [numClasses]sync.Pool

	gets, misses, oversize, puts, drops, recycledB atomic.Uint64
}

// NewSlicePool returns a registered pool named name whose slabs are
// cleared on Put — the right default for element types that hold
// pointers (strings, records). Use NewBytesPool for raw byte slabs.
func NewSlicePool[T any](name string) *SlicePool[T] {
	p := &SlicePool[T]{name: name, clear: true, elemSize: unsafe.Sizeof(*new(T))}
	register(p)
	return p
}

// NewBytesPool returns a registered []byte pool that skips the clear
// on Put (bytes hold no pointers, and wire slabs are fully overwritten
// before every read).
func NewBytesPool(name string) *SlicePool[byte] {
	p := &SlicePool[byte]{name: name, elemSize: 1}
	register(p)
	return p
}

// Get returns a slice of length n. From a non-nil pool the capacity is
// the class size and the contents of a recycled slab beyond what the
// caller writes are stale — callers must write every element they
// read. A nil pool returns make([]T, n).
func (p *SlicePool[T]) Get(n int) []T {
	if p == nil {
		return make([]T, n)
	}
	c := classFor(n)
	if c < 0 {
		p.oversize.Add(1)
		return make([]T, n)
	}
	if v := p.classes[c].Get(); v != nil {
		p.gets.Add(1)
		s := *(v.(*[]T))
		nb := uint64(cap(s)) * uint64(p.elemSize)
		p.recycledB.Add(nb)
		recycled(nb)
		return s[:n]
	}
	p.misses.Add(1)
	return make([]T, n, 1<<(minShift+c))
}

// Put returns s to its class for reuse. Slices with foreign capacities
// (not allocated by Get, or oversize) are dropped. Safe on a nil pool
// and on nil slices.
func (p *SlicePool[T]) Put(s []T) {
	if p == nil || s == nil {
		return
	}
	c := classOf(cap(s))
	if c < 0 {
		p.drops.Add(1)
		return
	}
	s = s[:cap(s)]
	if p.clear {
		clear(s)
	}
	p.puts.Add(1)
	p.classes[c].Put(&s)
}

// AppendOne appends v to s, growing through the pool instead of the
// allocator: when s is full, a slab of at least double the capacity is
// drawn from the pool, the elements are copied across, and the old slab
// is returned for reuse. The fast path (spare capacity) is a plain
// append. Safe on a nil pool, where it degrades to append(s, v).
func (p *SlicePool[T]) AppendOne(s []T, v T) []T {
	if len(s) < cap(s) || p == nil {
		return append(s, v)
	}
	want := 2 * cap(s)
	if want <= len(s) {
		want = len(s) + 1
	}
	grown := p.Get(want)[:len(s)]
	copy(grown, s)
	p.Put(s)
	return append(grown, v)
}

// Stats snapshots the pool's counters. Safe on a nil pool.
func (p *SlicePool[T]) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{
		Gets:          p.gets.Load(),
		Misses:        p.misses.Load(),
		Oversize:      p.oversize.Load(),
		Puts:          p.puts.Load(),
		Drops:         p.drops.Load(),
		RecycledBytes: p.recycledB.Load(),
	}
}

func (p *SlicePool[T]) report() PoolReport {
	s := p.Stats()
	return PoolReport{Name: p.name, Stats: s}
}

// Frames is the shared pool for wire frames and page-read buffers —
// the raw byte slabs every subsystem slices records out of.
var Frames = NewBytesPool("frames")

// Process-wide recycle counters, read by the cost profiler (via the
// hook mempool registers into obs) so /debug/hotpath can report how
// much of a stage's demand was served from pools rather than the heap.
var recycledBytes, recycledObjects atomic.Uint64

func recycled(n uint64) {
	recycledBytes.Add(n)
	recycledObjects.Add(1)
}

// RecycledTotals returns the cumulative (bytes, slabs) served from all
// pools since process start.
func RecycledTotals() (uint64, uint64) {
	return recycledBytes.Load(), recycledObjects.Load()
}

// PoolReport is one pool's row in the /debug/mempool document.
type PoolReport struct {
	Name string `json:"name"`
	Stats
}

type reporter interface{ report() PoolReport }

var (
	regMu    sync.Mutex
	registry []reporter
)

func register(r reporter) {
	regMu.Lock()
	registry = append(registry, r)
	regMu.Unlock()
}

// Report snapshots every registered pool, in registration order.
func Report() []PoolReport {
	regMu.Lock()
	rs := make([]reporter, len(registry))
	copy(rs, registry)
	regMu.Unlock()
	out := make([]PoolReport, 0, len(rs))
	for _, r := range rs {
		out = append(out, r.report())
	}
	return out
}
