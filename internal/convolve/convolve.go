// Package convolve computes exact per-device load vectors for partial
// match queries under group allocators without enumerating qualified
// buckets.
//
// For a group allocator, the device of a qualified bucket is
//
//	dev = h · c_{i1}(v1) · c_{i2}(v2) · ... · c_{ik}(vk)
//
// where h folds the specified contributions and i1..ik are the unspecified
// fields. The load vector is therefore the group convolution of the
// per-field contribution histograms, translated by h. Because translation
// by h is a bijection of Z_M in both groups, the *multiset* of loads — and
// hence the largest response size, the optimality verdict, and any other
// symmetric statistic — does not depend on the specified values at all.
// That observation turns the paper's Tables 7-9, which average over every
// possible query, into a handful of convolutions.
package convolve

import (
	"fxdist/internal/decluster"
	"fxdist/internal/query"
)

// FieldHistogram returns g[c] = #{v in f_i : Contribution(i, v) = c}, the
// contribution histogram of one field.
func FieldHistogram(a decluster.GroupAllocator, fieldIdx int) []int {
	fs := a.FileSystem()
	g := make([]int, fs.M)
	for v := 0; v < fs.Sizes[fieldIdx]; v++ {
		g[a.Contribution(fieldIdx, v)]++
	}
	return g
}

// isUniform reports whether all entries of vec are equal.
func isUniform(vec []int) bool {
	for _, v := range vec[1:] {
		if v != vec[0] {
			return false
		}
	}
	return true
}

// convolveInto returns the group convolution of vec with the contribution
// histogram of one field: out[z·c] += vec[z] * g[c]. Convolving anything
// with a uniform operand yields a uniform result, so both uniform cases
// short-circuit — this is what makes sweeps over file systems with many
// fields of size >= M (whose contribution histograms are uniform) cheap.
func convolveInto(g decluster.Group, m int, vec, hist []int) []int {
	if isUniform(vec) || isUniform(hist) {
		vecSum, histSum := 0, 0
		for _, v := range vec {
			vecSum += v
		}
		for _, h := range hist {
			histSum += h
		}
		out := make([]int, m)
		per := vecSum * histSum / m
		for z := range out {
			out[z] = per
		}
		return out
	}
	out := make([]int, m)
	for c, gc := range hist {
		if gc == 0 {
			continue
		}
		for z, vz := range vec {
			if vz == 0 {
				continue
			}
			out[g.Combine(z, c, m)] += vz * gc
		}
	}
	return out
}

// Uniform reports whether all entries of a histogram are equal. A query
// with any unspecified field whose contribution histogram is uniform has a
// uniform load vector (convolving with a uniform operand yields a uniform
// result) and is therefore always distributed strict-optimally.
func Uniform(hist []int) bool { return isUniform(hist) }

// Fold returns the group convolution of vec with hist under g on Z_M.
func Fold(g decluster.Group, m int, vec, hist []int) []int {
	return convolveInto(g, m, vec, hist)
}

// Loads returns the per-device qualified-bucket counts for q under a —
// the same vector as query.Loads, computed in
// O(M * sum over unspecified fields of min(F_i, M)) instead of O(|R(q)|).
func Loads(a decluster.GroupAllocator, q query.Query) []int {
	fs := a.FileSystem()
	if err := q.Validate(fs); err != nil {
		panic(err)
	}
	g := a.Op()
	h := 0
	for i, v := range q.Spec {
		if v != query.Unspecified {
			h = g.Combine(h, a.Contribution(i, v), fs.M)
		}
	}
	vec := make([]int, fs.M)
	vec[h] = 1
	for _, i := range q.UnspecifiedFields() {
		vec = convolveInto(g, fs.M, vec, FieldHistogram(a, i))
	}
	return vec
}

// Profile returns the load vector for the canonical query that leaves
// exactly the fields in unspec free and specifies 0 everywhere else. By
// the translation argument above, the load vector of ANY query with the
// same unspecified set is a permutation of this profile, so its maximum,
// minimum and histogram are query-value-independent.
func Profile(a decluster.GroupAllocator, unspec []int) []int {
	fs := a.FileSystem()
	zero := make([]int, fs.NumFields())
	return Loads(a, query.FromSubset(zero, unspec))
}

// LargestLoad returns the largest response size for any query whose
// unspecified field set is unspec (it is the same for all of them).
func LargestLoad(a decluster.GroupAllocator, unspec []int) int {
	max := 0
	for _, v := range Profile(a, unspec) {
		if v > max {
			max = v
		}
	}
	return max
}

// QualifiedCount returns |R(q)| for the unspecified set.
func QualifiedCount(fs decluster.FileSystem, unspec []int) int {
	n := 1
	for _, i := range unspec {
		n *= fs.Sizes[i]
	}
	return n
}
