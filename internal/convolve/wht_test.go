package convolve

import (
	"math/rand"
	"reflect"
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/query"
)

// WHT is self-inverse up to the factor n.
func TestWHTSelfInverse(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 8, 64} {
		vec := make([]int64, n)
		orig := make([]int64, n)
		for i := range vec {
			vec[i] = int64(r.Intn(100) - 50)
			orig[i] = vec[i]
		}
		whtInPlace(vec)
		whtInPlace(vec)
		for i := range vec {
			if vec[i] != orig[i]*int64(n) {
				t.Fatalf("n=%d: WHT^2 [%d] = %d, want %d", n, i, vec[i], orig[i]*int64(n))
			}
		}
	}
}

// The WHT engine must agree with direct convolution on random FX
// configurations and queries.
func TestLoadsWHTEqualsDirect(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		nf := 2 + r.Intn(3)
		sizes := make([]int, nf)
		for i := range sizes {
			sizes[i] = 1 << (1 + r.Intn(4))
		}
		m := 1 << (1 + r.Intn(6))
		fs := decluster.MustFileSystem(sizes, m)
		fx := decluster.MustFX(fs)
		spec := make([]int, nf)
		for i := range spec {
			if r.Intn(2) == 0 {
				spec[i] = query.Unspecified
			} else {
				spec[i] = r.Intn(sizes[i])
			}
		}
		q := query.New(spec)
		direct := Loads(fx, q)
		fast := LoadsWHT(fx, q)
		if !reflect.DeepEqual(direct, fast) {
			t.Fatalf("sizes=%v m=%d q=%v: direct=%v wht=%v", sizes, m, q, direct, fast)
		}
	}
}

func TestLoadsWHTRejectsAdditiveGroup(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 8)
	md := decluster.NewModulo(fs)
	defer func() {
		if recover() == nil {
			t.Fatal("additive allocator accepted")
		}
	}()
	LoadsWHT(md, query.All(2))
}

func TestLoadsWHTValidatesQuery(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 8)
	fx := decluster.MustFX(fs)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid query accepted")
		}
	}()
	LoadsWHT(fx, query.New([]int{9, 0}))
}

func BenchmarkLoadsDirectLargeM(b *testing.B) {
	fs := decluster.MustFileSystem([]int{256, 256, 256, 256}, 512)
	fx := decluster.MustFX(fs)
	q := query.All(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Loads(fx, q)
	}
}

func BenchmarkLoadsWHTLargeM(b *testing.B) {
	fs := decluster.MustFileSystem([]int{256, 256, 256, 256}, 512)
	fx := decluster.MustFX(fs)
	q := query.All(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LoadsWHT(fx, q)
	}
}
