package convolve

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/field"
	"fxdist/internal/query"
)

// Convolved loads must equal brute-force loads for every allocator family
// and random queries: this is the correctness anchor for Tables 7-9.
func TestLoadsEqualBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		nf := 2 + r.Intn(3)
		sizes := make([]int, nf)
		mult := make([]int, nf)
		for i := range sizes {
			sizes[i] = 1 << (1 + r.Intn(3))
			mult[i] = 1 + r.Intn(60)
		}
		m := 1 << (1 + r.Intn(5))
		fs := decluster.MustFileSystem(sizes, m)
		allocs := []decluster.GroupAllocator{
			decluster.MustFX(fs),
			decluster.NewModulo(fs),
			decluster.MustGDM(fs, mult),
		}
		spec := make([]int, nf)
		for i := range spec {
			if r.Intn(2) == 0 {
				spec[i] = query.Unspecified
			} else {
				spec[i] = r.Intn(sizes[i])
			}
		}
		q := query.New(spec)
		for _, a := range allocs {
			fast := Loads(a, q)
			slow := query.Loads(a, q)
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("%s sizes=%v m=%d q=%v: convolve=%v brute=%v",
					a.Name(), sizes, m, q, fast, slow)
			}
		}
	}
}

// Translation invariance: the sorted load vector must be identical for
// every choice of specified values with the same unspecified set. This is
// the theorem that lets the analysis package average Tables 7-9 over all
// queries by evaluating one profile per field subset.
func TestLoadsTranslationInvariance(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 8, 4}, 16)
	allocs := []decluster.GroupAllocator{
		decluster.MustFX(fs),
		decluster.NewModulo(fs),
		decluster.MustGDM(fs, []int{3, 5, 7}),
	}
	unspec := []int{1}
	for _, a := range allocs {
		ref := Profile(a, unspec)
		sort.Ints(ref)
		for v0 := 0; v0 < 4; v0++ {
			for v2 := 0; v2 < 4; v2++ {
				q := query.New([]int{v0, query.Unspecified, v2})
				got := Loads(a, q)
				sort.Ints(got)
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("%s: sorted loads differ for %v: %v vs %v", a.Name(), q, got, ref)
				}
			}
		}
	}
}

func TestLoadsSumEqualsQualified(t *testing.T) {
	fs := decluster.MustFileSystem([]int{8, 8, 8}, 32)
	fx := decluster.MustFX(fs)
	q := query.New([]int{query.Unspecified, 3, query.Unspecified})
	sum := 0
	for _, v := range Loads(fx, q) {
		sum += v
	}
	if sum != q.NumQualified(fs) {
		t.Errorf("loads sum %d, want %d", sum, q.NumQualified(fs))
	}
}

func TestProfileAndLargestLoad(t *testing.T) {
	fs := decluster.MustFileSystem([]int{2, 8}, 4)
	fx, err := decluster.NewBasicFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1 file system: one unspecified field of size 8 over 4 devices
	// gives 2 buckets per device.
	p := Profile(fx, []int{1})
	for dev, v := range p {
		if v != 2 {
			t.Errorf("device %d: %d, want 2", dev, v)
		}
	}
	if got := LargestLoad(fx, []int{1}); got != 2 {
		t.Errorf("LargestLoad = %d, want 2", got)
	}
	if got := LargestLoad(fx, nil); got != 1 {
		t.Errorf("LargestLoad(exact) = %d, want 1", got)
	}
}

func TestQualifiedCount(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 8, 2}, 4)
	if got := QualifiedCount(fs, []int{0, 2}); got != 8 {
		t.Errorf("QualifiedCount = %d, want 8", got)
	}
	if got := QualifiedCount(fs, nil); got != 1 {
		t.Errorf("QualifiedCount(empty) = %d, want 1", got)
	}
}

// Modulo skew from Table 2: f=(4,4), M=16, both fields unspecified.
// Modulo piles up on middle devices (max 4... actually the triangle peaks
// at sum=3 with 4 combinations), FX(I,U) spreads 1 per device.
func TestTable2SkewReproduced(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 16)
	fx := decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U}))
	md := decluster.NewModulo(fs)
	if got := LargestLoad(fx, []int{0, 1}); got != 1 {
		t.Errorf("FX largest load = %d, want 1", got)
	}
	if got := LargestLoad(md, []int{0, 1}); got != 4 {
		t.Errorf("Modulo largest load = %d, want 4", got)
	}
}

func TestLoadsPanicsOnInvalidQuery(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 16)
	fx := decluster.MustFX(fs)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid query")
		}
	}()
	Loads(fx, query.New([]int{9, 0}))
}

func BenchmarkLoadsConvolve(b *testing.B) {
	fs := decluster.MustFileSystem([]int{8, 8, 8, 8, 8, 8}, 64)
	fx := decluster.MustFX(fs)
	q := query.All(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Loads(fx, q)
	}
}

func BenchmarkLoadsBruteForce(b *testing.B) {
	fs := decluster.MustFileSystem([]int{8, 8, 8, 8, 8, 8}, 64)
	fx := decluster.MustFX(fs)
	q := query.All(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		query.Loads(fx, q)
	}
}
