package convolve

import (
	"fxdist/internal/decluster"
	"fxdist/internal/query"
)

// Walsh-Hadamard fast path for xor-convolutions. The direct convolution
// in Loads costs O(M * distinct contributions) per unspecified field; in
// the WHT domain each field costs a pointwise multiply, so a k-field
// query costs O(M log M + k*M) — the better choice for large machines
// (M = 512 figure sweeps) with many non-uniform fields.
//
// WHT(a xor-conv b) = WHT(a) .* WHT(b), with WHT self-inverse up to a
// factor of M.

// whtInPlace applies the (unnormalised) Walsh-Hadamard transform to vec,
// whose length must be a power of two.
func whtInPlace(vec []int64) {
	n := len(vec)
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				x, y := vec[j], vec[j+h]
				vec[j], vec[j+h] = x+y, x-y
			}
		}
	}
}

// LoadsWHT computes the same per-device load vector as Loads, for
// xor-group allocators only, via the Walsh-Hadamard transform. It panics
// if the allocator's group is not XorGroup (additive allocators would
// need a DFT; callers pick the engine that matches the group).
func LoadsWHT(a decluster.GroupAllocator, q query.Query) []int {
	if a.Op() != decluster.XorGroup {
		panic("convolve: LoadsWHT requires a xor-group allocator")
	}
	fs := a.FileSystem()
	if err := q.Validate(fs); err != nil {
		panic(err)
	}
	m := fs.M

	h := 0
	for i, v := range q.Spec {
		if v != query.Unspecified {
			h = (h ^ a.Contribution(i, v)) & (m - 1)
		}
	}
	acc := make([]int64, m)
	acc[h] = 1
	whtInPlace(acc)

	spectrum := make([]int64, m)
	for _, i := range q.UnspecifiedFields() {
		hist := FieldHistogram(a, i)
		for z, c := range hist {
			spectrum[z] = int64(c)
		}
		whtInPlace(spectrum)
		for z := range acc {
			acc[z] *= spectrum[z]
		}
		for z := range spectrum {
			spectrum[z] = 0
		}
	}

	whtInPlace(acc) // inverse up to the factor m
	out := make([]int, m)
	for z, v := range acc {
		out[z] = int(v / int64(m))
	}
	return out
}
