// Package bitsx provides the bit-level algebra underlying FX declustering:
// the truncation operator T_M, exclusive-or over integers and sets of
// integers, and the interval machinery of the paper's Lemmas 1.1 and 4.1.
//
// All "sizes" in this package (field sizes, device counts) are powers of
// two, matching the paper's standing assumption for hash-directory files
// and parallel device counts.
package bitsx

import (
	"fmt"
	"math/bits"
)

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool {
	return v > 0 && v&(v-1) == 0
}

// Log2 returns log2(v) for a power of two v. It panics otherwise; callers
// validate configuration at construction time, so a non-power-of-two here
// is a programming error.
func Log2(v int) int {
	if !IsPow2(v) {
		panic(fmt.Sprintf("bitsx: Log2 of non-power-of-two %d", v))
	}
	return bits.TrailingZeros(uint(v))
}

// CeilPow2 returns the smallest power of two >= v, for v >= 1.
func CeilPow2(v int) int {
	if v <= 1 {
		return 1
	}
	return 1 << (bits.Len(uint(v - 1)))
}

// TM returns T_M(x): the rightmost log2(M) bits of x. M must be a power of
// two. This is the device projection operator of the paper (§3).
func TM(x, m int) int {
	if !IsPow2(m) {
		panic(fmt.Sprintf("bitsx: TM with non-power-of-two M=%d", m))
	}
	return x & (m - 1)
}

// XorSet returns { x ^ y : y in set }. It implements the paper's
// integer-by-set exclusive-or X [+] Y.
func XorSet(x int, set []int) []int {
	out := make([]int, len(set))
	for i, y := range set {
		out[i] = x ^ y
	}
	return out
}

// XorSets returns { x ^ y : x in a, y in b }, the set-by-set exclusive-or
// of the paper, with multiplicity (the result is a multiset: duplicates are
// preserved because load analysis needs multiplicities).
func XorSets(a, b []int) []int {
	out := make([]int, 0, len(a)*len(b))
	for _, x := range a {
		for _, y := range b {
			out = append(out, x^y)
		}
	}
	return out
}

// ZM returns the set Z_M = {0, 1, ..., m-1}.
func ZM(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

// IsZM reports whether set is a permutation of Z_M (Lemma 1.1 asserts
// Z_M [+] k = Z_M for 0 <= k <= M-1; tests use IsZM to verify it).
func IsZM(set []int, m int) bool {
	if len(set) != m {
		return false
	}
	seen := make([]bool, m)
	for _, v := range set {
		if v < 0 || v >= m || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// XorInterval implements Lemma 4.1: for W = {0..w-1} (w a power of two) and
// L = a*w + b with 0 <= b < w, W [+] L = {a*w, a*w+1, ..., (a+1)*w - 1}.
// It returns that interval as a slice. The function computes W [+] L
// directly; the lemma guarantees the result is exactly the interval.
func XorInterval(w, l int) []int {
	if !IsPow2(w) {
		panic(fmt.Sprintf("bitsx: XorInterval with non-power-of-two w=%d", w))
	}
	out := make([]int, w)
	for i := 0; i < w; i++ {
		out[i] = i ^ l
	}
	return out
}

// IntervalOf returns the index of the half-open interval [i*d, (i+1)*d)
// that contains v, for interval size d. It panics if d <= 0.
func IntervalOf(v, d int) int {
	if d <= 0 {
		panic(fmt.Sprintf("bitsx: IntervalOf with non-positive interval size %d", d))
	}
	return v / d
}

// Histogram counts occurrences of each value in vals over the range
// [0, m). Values outside the range panic: device numbers produced by a
// correct allocator are always in range, so an out-of-range value is a bug.
func Histogram(vals []int, m int) []int {
	h := make([]int, m)
	for _, v := range vals {
		h[v]++
	}
	return h
}

// MaxInt returns the maximum of a non-empty slice.
func MaxInt(vals []int) int {
	max := vals[0]
	for _, v := range vals[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// MinInt returns the minimum of a non-empty slice.
func MinInt(vals []int) int {
	min := vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}

// Binary renders x as an n-bit binary string, e.g. Binary(5, 4) == "0101".
// The paper's tables print field values in binary; the table-reproduction
// CLI uses this to match their formatting.
func Binary(x, n int) string {
	b := make([]byte, n)
	for i := n - 1; i >= 0; i-- {
		if x&1 == 1 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
		x >>= 1
	}
	return string(b)
}
