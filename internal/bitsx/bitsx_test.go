package bitsx

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	cases := []struct {
		v    int
		want bool
	}{
		{0, false}, {1, true}, {2, true}, {3, false}, {4, true},
		{6, false}, {8, true}, {1024, true}, {1023, false}, {-4, false},
	}
	for _, c := range cases {
		if got := IsPow2(c.v); got != c.want {
			t.Errorf("IsPow2(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestLog2(t *testing.T) {
	for i := 0; i < 30; i++ {
		if got := Log2(1 << i); got != i {
			t.Errorf("Log2(%d) = %d, want %d", 1<<i, got, i)
		}
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(12) did not panic")
		}
	}()
	Log2(12)
}

func TestCeilPow2(t *testing.T) {
	cases := []struct{ v, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {9, 16}, {16, 16}, {17, 32},
	}
	for _, c := range cases {
		if got := CeilPow2(c.v); got != c.want {
			t.Errorf("CeilPow2(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestTM(t *testing.T) {
	cases := []struct{ x, m, want int }{
		{0b1101, 4, 0b01},
		{0b1101, 8, 0b101},
		{0b1101, 16, 0b1101},
		{255, 2, 1},
		{256, 2, 0},
		{7, 1, 0},
	}
	for _, c := range cases {
		if got := TM(c.x, c.m); got != c.want {
			t.Errorf("TM(%d, %d) = %d, want %d", c.x, c.m, got, c.want)
		}
	}
}

// T_M is a homomorphism for xor: T_M(a^b) = T_M(a) ^ T_M(b). The proof of
// Theorem 1 relies on this.
func TestTMXorHomomorphism(t *testing.T) {
	f := func(a, b uint16, mexp uint8) bool {
		m := 1 << (mexp % 12)
		return TM(int(a)^int(b), m) == TM(int(a), m)^TM(int(b), m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// T_M(T_M(a) ^ T_M(b)) = T_M(a ^ b): truncation can be applied early.
func TestTMIdempotentComposition(t *testing.T) {
	f := func(a, b uint16, mexp uint8) bool {
		m := 1 << (mexp % 12)
		return TM(TM(int(a), m)^TM(int(b), m), m) == TM(int(a)^int(b), m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Lemma 1.1: Z_M [+] k = Z_M for any 0 <= k <= M-1.
func TestLemma11(t *testing.T) {
	for _, m := range []int{1, 2, 4, 8, 16, 64, 256} {
		for k := 0; k < m; k++ {
			got := XorSet(k, ZM(m))
			if !IsZM(got, m) {
				t.Fatalf("Z_%d [+] %d is not Z_%d: %v", m, k, m, got)
			}
		}
	}
}

// Example 2 of the paper: Z_8 [+] 3 = {3,2,1,0,7,6,5,4}.
func TestLemma11PaperExample(t *testing.T) {
	got := XorSet(3, ZM(8))
	want := []int{3, 2, 1, 0, 7, 6, 5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Z_8 [+] 3 = %v, want %v", got, want)
		}
	}
}

// Lemma 4.1: {0..w-1} [+] (a*w+b) = {a*w .. (a+1)*w - 1} as a set.
func TestLemma41(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8, 32} {
		for a := 0; a < 5; a++ {
			for b := 0; b < w; b++ {
				got := XorInterval(w, a*w+b)
				sort.Ints(got)
				for i := 0; i < w; i++ {
					if got[i] != a*w+i {
						t.Fatalf("W[+]%d with w=%d: got %v", a*w+b, w, got)
					}
				}
			}
		}
	}
}

func TestLemma41Property(t *testing.T) {
	f := func(wexp uint8, l uint16) bool {
		w := 1 << (wexp % 10)
		got := XorInterval(w, int(l))
		sort.Ints(got)
		a := int(l) / w
		for i := 0; i < w; i++ {
			if got[i] != a*w+i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorSets(t *testing.T) {
	// Paper definition example: X2 = 2, Y2 = {0,1,2,3} => {2,3,0,1}.
	got := XorSets([]int{2}, []int{0, 1, 2, 3})
	sort.Ints(got)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("XorSets = %v, want %v", got, want)
		}
	}
	// Multiset semantics: |a| * |b| outputs.
	got = XorSets([]int{0, 1}, []int{0, 1})
	if len(got) != 4 {
		t.Fatalf("XorSets multiset size = %d, want 4", len(got))
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{0, 1, 1, 3, 3, 3}, 4)
	want := []int{1, 2, 0, 3}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", h, want)
		}
	}
}

func TestMaxMinCeil(t *testing.T) {
	if MaxInt([]int{3, 9, 2}) != 9 {
		t.Error("MaxInt failed")
	}
	if MinInt([]int{3, 9, 2}) != 2 {
		t.Error("MinInt failed")
	}
	if CeilDiv(7, 2) != 4 || CeilDiv(8, 2) != 4 || CeilDiv(1, 32) != 1 || CeilDiv(0, 4) != 0 {
		t.Error("CeilDiv failed")
	}
}

func TestBinary(t *testing.T) {
	cases := []struct {
		x, n int
		want string
	}{
		{5, 4, "0101"}, {0, 3, "000"}, {7, 3, "111"}, {13, 4, "1101"}, {1, 1, "1"},
	}
	for _, c := range cases {
		if got := Binary(c.x, c.n); got != c.want {
			t.Errorf("Binary(%d,%d) = %q, want %q", c.x, c.n, got, c.want)
		}
	}
}

func TestIntervalOf(t *testing.T) {
	if IntervalOf(0, 4) != 0 || IntervalOf(3, 4) != 0 || IntervalOf(4, 4) != 1 || IntervalOf(15, 4) != 3 {
		t.Error("IntervalOf failed")
	}
}

func TestIsZMRejects(t *testing.T) {
	if IsZM([]int{0, 1, 2}, 4) {
		t.Error("short slice accepted")
	}
	if IsZM([]int{0, 1, 1, 3}, 4) {
		t.Error("duplicate accepted")
	}
	if IsZM([]int{0, 1, 2, 4}, 4) {
		t.Error("out-of-range accepted")
	}
	if !IsZM([]int{3, 1, 0, 2}, 4) {
		t.Error("valid permutation rejected")
	}
}

// Xor of two full Z_M multisets: every device appears exactly M times.
func TestXorSetsUniform(t *testing.T) {
	for _, m := range []int{2, 4, 16} {
		h := Histogram(XorSets(ZM(m), ZM(m)), m)
		for z, c := range h {
			if c != m {
				t.Fatalf("m=%d device %d count %d, want %d", m, z, c, m)
			}
		}
	}
}

func BenchmarkTMOps(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	xs := make([]int, 1024)
	for i := range xs {
		xs[i] = r.Intn(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TM(xs[i%1024], 64)
	}
}
