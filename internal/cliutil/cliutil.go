// Package cliutil holds the small parsing helpers the command-line tools
// share: comma-separated size vectors and field=value query terms.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSizes parses a comma-separated list of positive integers, e.g.
// "8,8,16".
func ParseSizes(arg string) ([]int, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, fmt.Errorf("empty size list")
	}
	parts := strings.Split(arg, ",")
	sizes := make([]int, len(parts))
	for i, s := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("size %q: %w", s, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("size %d must be positive", v)
		}
		sizes[i] = v
	}
	return sizes, nil
}

// ParseTerms parses query terms of the form field=value into a map.
// Repeated fields and malformed terms are errors.
func ParseTerms(args []string) (map[string]string, error) {
	spec := make(map[string]string, len(args))
	for _, arg := range args {
		k, v, ok := strings.Cut(arg, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("query term %q is not field=value", arg)
		}
		if _, dup := spec[k]; dup {
			return nil, fmt.Errorf("field %q specified twice", k)
		}
		spec[k] = v
	}
	return spec, nil
}
