package cliutil

import (
	"reflect"
	"testing"
)

func TestParseSizes(t *testing.T) {
	got, err := ParseSizes(" 8, 16 ,4")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{8, 16, 4}) {
		t.Errorf("ParseSizes = %v", got)
	}
	for _, bad := range []string{"", "  ", "8,", "8,x", "8,-2", "0"} {
		if _, err := ParseSizes(bad); err == nil {
			t.Errorf("ParseSizes(%q) accepted", bad)
		}
	}
}

func TestParseTerms(t *testing.T) {
	got, err := ParseTerms([]string{"make=ford", "year=1988", "model=a=b"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"make": "ford", "year": "1988", "model": "a=b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseTerms = %v", got)
	}
	if len(mustFail(t, []string{"noequals"})) != 0 {
		t.Error("malformed accepted")
	}
	if len(mustFail(t, []string{"=v"})) != 0 {
		t.Error("empty field accepted")
	}
	if len(mustFail(t, []string{"a=1", "a=2"})) != 0 {
		t.Error("duplicate field accepted")
	}
	empty, err := ParseTerms(nil)
	if err != nil || len(empty) != 0 {
		t.Error("nil args should parse to empty spec")
	}
}

func mustFail(t *testing.T, args []string) map[string]string {
	t.Helper()
	got, err := ParseTerms(args)
	if err == nil {
		return got
	}
	return nil
}
