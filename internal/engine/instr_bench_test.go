package engine_test

import (
	"context"
	"testing"

	"fxdist/internal/engine"
	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
)

// BenchmarkRetrieveInstrumentation isolates the cost-attribution
// overhead: the identical executor and workload, with and without a
// profiler+flight recorder attached (instrumentation is skipped
// entirely when both are nil). The devices answer instantly, so the
// measured delta is the absolute per-query instrumentation cost — an
// upper bound on its relative overhead for any real retrieval.
func BenchmarkRetrieveInstrumentation(b *testing.B) {
	for _, mode := range []struct {
		name  string
		instr bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			f := mkhash.MustNew(mkhash.Schema{Fields: []string{"a", "b"}, Depths: []int{2, 2}})
			devs := make([]engine.Device, 4)
			for d := range devs {
				devs[d] = fixedDevice{ans: engine.Answer{Buckets: 4, Records: 16, Hits: []mkhash.Record{rec("x", "y")}}}
			}
			cfg := engine.Config{Schema: f, Devices: devs, Model: engine.MainMemory}
			if mode.instr {
				cfg.Profile = obs.NewCostProfiler("bench")
				cfg.Flight = obs.NewFlightRecorder("bench", obs.DefaultFlightSlots)
			}
			e, err := engine.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			pm, err := f.Spec(map[string]string{"a": "x"})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Retrieve(ctx, pm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
