package engine

import (
	"context"
	"fmt"
	"time"

	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

// scanDevice runs one device slot's scan to completion under the
// executor's failure handling: the composable policy chain when one is
// configured, the legacy single-shot RetryPolicy otherwise, a bare scan
// when neither is set. It runs on a pool worker; every retry of the
// slot stays on that worker (backoff sleeps are context-aware), so the
// pool bound holds across retries.
func (e *Executor) scanDevice(ctx context.Context, dev int, q query.Query, pm mkhash.PartialMatch) (Answer, error) {
	if len(e.res.Policies) == 0 {
		ans, err := e.devs[dev].Scan(ctx, q, pm)
		if err != nil && e.retry != nil && ctx.Err() == nil {
			if alt := e.retry(ctx, dev, err); alt != nil {
				ans, err = alt.Scan(ctx, q, pm)
			}
		}
		return ans, err
	}

	cur := e.devs[dev]
	primary := true
	for attempt := 1; ; attempt++ {
		var ans Answer
		var err error
		if attempt == 1 {
			err = e.allow(ctx, dev)
		}
		if err == nil {
			t0 := time.Now()
			ans, err = e.scanMaybeHedged(ctx, dev, cur, primary, q, pm)
			elapsed := time.Since(t0)
			if err == nil {
				for _, p := range e.res.Policies {
					p.Success(dev, primary, elapsed)
				}
				return ans, nil
			}
		}
		if ctx.Err() != nil {
			return Answer{}, err
		}
		at := Attempt{Device: dev, N: attempt, Primary: primary, Err: err}
		var dec Decision
		for _, p := range e.res.Policies {
			if d := p.Failure(ctx, at); d.Retry && !dec.Retry {
				dec = d
			}
		}
		if !dec.Retry {
			return Answer{}, err
		}
		if span := SpanFromContext(ctx); span != nil {
			span.Event(fmt.Sprintf("retry: device %d attempt %d after %v (cause: %v)", dev, attempt+1, dec.Delay, err))
		}
		if dec.Delay > 0 {
			t := time.NewTimer(dec.Delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return Answer{}, ctx.Err()
			}
		}
		if dec.Device != nil {
			cur = dec.Device
			primary = false
		}
	}
}

// allow asks every policy whether the first attempt on dev may proceed
// (circuit breakers veto here). A veto becomes the attempt's error and
// flows through the Failure chain, where a reroute policy can still
// offer the device's backup.
func (e *Executor) allow(ctx context.Context, dev int) error {
	for _, p := range e.res.Policies {
		if err := p.Allow(ctx, dev); err != nil {
			if span := SpanFromContext(ctx); span != nil {
				span.Event(fmt.Sprintf("breaker: device %d attempt vetoed: %v", dev, err))
			}
			return err
		}
	}
	return nil
}

// hedgeResult is one arm of a hedged scan.
type hedgeResult struct {
	ans   Answer
	err   error
	hedge bool
}

// scanMaybeHedged scans d, racing it against the hedger's backup when
// the slot's primary device is breaching its peers' tail latency. Only
// primary attempts hedge — replacement devices are already the backup
// path. Both arms share a cancellable child context; the first success
// cancels the loser, and the buffered channel lets an abandoned arm
// finish without leaking.
func (e *Executor) scanMaybeHedged(ctx context.Context, dev int, d Device, primary bool, q query.Query, pm mkhash.PartialMatch) (Answer, error) {
	h := e.res.Hedger
	if h == nil || !primary {
		return d.Scan(ctx, q, pm)
	}
	backup, after, ok := h.Plan(dev)
	if !ok || backup == nil {
		t0 := time.Now()
		ans, err := d.Scan(ctx, q, pm)
		h.Observe(dev, time.Since(t0), err)
		return ans, err
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// The arms run as raw goroutines, not pool tasks: a hedge queued
	// behind a full pool could deadlock the very retrieval it serves.
	ch := make(chan hedgeResult, 2)
	t0 := time.Now()
	go func() {
		ans, err := d.Scan(hctx, q, pm)
		ch <- hedgeResult{ans: ans, err: err}
	}()
	timer := time.NewTimer(after)
	defer timer.Stop()

	span := SpanFromContext(ctx)
	hedged := false
	var primErr error
	outstanding := 1
	for {
		select {
		case r := <-ch:
			outstanding--
			if !r.hedge {
				h.Observe(dev, time.Since(t0), r.err)
			}
			if r.err == nil {
				if r.hedge {
					h.HedgeWon(dev)
					if span != nil {
						span.Event(fmt.Sprintf("hedge: backup won for device %d after %v", dev, time.Since(t0)))
					}
				}
				return r.ans, nil
			}
			if !r.hedge {
				primErr = r.err
				if !hedged {
					return Answer{}, primErr
				}
			}
			if outstanding == 0 {
				// Both arms failed: report the primary's cause.
				if primErr == nil {
					primErr = r.err
				}
				return Answer{}, primErr
			}
		case <-timer.C:
			hedged = true
			outstanding++
			h.Hedged(dev)
			if span != nil {
				span.Event(fmt.Sprintf("hedge: launching backup for device %d after %v", dev, after))
			}
			go func() {
				ans, err := backup.Scan(hctx, q, pm)
				ch <- hedgeResult{ans: ans, err: err, hedge: true}
			}()
		case <-ctx.Done():
			return Answer{}, ctx.Err()
		}
	}
}
