package engine

import "sync"

// pool is a lazily-spawned bounded worker pool. Tasks are queued under a
// mutex; a submit spawns a new worker only while fewer than max are
// running, and workers exit as soon as the queue drains. The pool
// therefore needs no Close: an idle pool holds zero goroutines, yet a
// retrieval burst (or a RetrieveBatch) reuses the same workers across
// every device task instead of spawning one goroutine per device per
// query.
type pool struct {
	max     int
	mu      sync.Mutex
	queue   []func()
	workers int
}

func newPool(max int) *pool {
	if max < 1 {
		max = 1
	}
	return &pool{max: max}
}

// submit enqueues f for execution. It never blocks; excess tasks wait in
// the queue until a worker frees up.
func (p *pool) submit(f func()) {
	p.mu.Lock()
	p.queue = append(p.queue, f)
	if p.workers < p.max {
		p.workers++
		p.mu.Unlock()
		go p.drain()
		return
	}
	p.mu.Unlock()
}

func (p *pool) drain() {
	for {
		p.mu.Lock()
		if len(p.queue) == 0 {
			p.workers--
			p.queue = nil // release the backing array between bursts
			p.mu.Unlock()
			return
		}
		f := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		p.mu.Unlock()
		f()
	}
}
