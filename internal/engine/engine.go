// Package engine is the unified retrieval engine behind every cluster
// backend: one executor that plans a partial match query, fans it out to
// a set of Devices on a bounded worker pool, and merges the per-device
// answers under the paper's §5.2.1 cost model.
//
// The paper's §4.2 inverse mapping — each device enumerates only its own
// qualified buckets — is a property of the Device implementations; the
// engine owns everything around it: query lowering and validation (once,
// not per backend), context cancellation and deadlines, failover
// rerouting, cost aggregation, metrics, and trace spans. The in-memory
// simulator, the disk-backed durable cluster, the replicated cluster and
// the TCP coordinator are all thin Device adapters over this executor,
// so capabilities like multi-query batching exist once and work
// everywhere.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
	"fxdist/internal/query"
)

// CostModel is the per-device service time model of §5.2.1. Service time
// for a query on one device is PerQuery + buckets*PerBucket +
// records*PerRecord. The zero CostModel costs nothing — backends with no
// simulated hardware (the TCP coordinator) use it and report zero times.
type CostModel struct {
	Name string
	// PerQuery is the fixed per-device overhead of dispatching one query.
	PerQuery time.Duration
	// PerBucket is the cost of accessing one qualified bucket (for disks:
	// seek + rotational latency + transfer of one bucket).
	PerBucket time.Duration
	// PerRecord is the cost of scanning or shipping one record.
	PerRecord time.Duration
}

// DeviceTime returns the model's service time for one device's work on
// one query — the §5.2.1 formula in its only implementation.
func (m CostModel) DeviceTime(buckets, records int) time.Duration {
	return m.PerQuery +
		time.Duration(buckets)*m.PerBucket +
		time.Duration(records)*m.PerRecord
}

// ParallelDisk models late-1980s disks on a shared bus: ~28 ms per bucket
// access (16 ms average seek + 8.3 ms rotational latency + transfer), plus
// per-record transfer cost.
var ParallelDisk = CostModel{Name: "parallel-disk", PerQuery: 1 * time.Millisecond, PerBucket: 28 * time.Millisecond, PerRecord: 50 * time.Microsecond}

// MainMemory models a multiprocessor main-memory database node: bucket
// access is a few microseconds of address computation and pointer chasing.
var MainMemory = CostModel{Name: "main-memory", PerQuery: 2 * time.Microsecond, PerBucket: 2 * time.Microsecond, PerRecord: 200 * time.Nanosecond}

// Answer is one device's contribution to a retrieval.
type Answer struct {
	// Buckets is the number of qualified buckets the device accessed.
	Buckets int
	// Records is the number of records the device scanned.
	Records int
	// Hits are the matching records. Devices draw the slice from
	// HitsPool (via SlicePool.AppendOne); the executor's merge consumes
	// it and returns the slab to the pool, so a device must not retain
	// Hits after returning the Answer.
	Hits []mkhash.Record
	// Idle marks a device that did not participate at all (e.g. a failed
	// replica whose buckets are served elsewhere); idle devices are not
	// charged the per-query dispatch cost.
	Idle bool
	// Release, when non-nil, frees device-held arena memory backing the
	// records in Hits (netdist decode arenas, durable scan builders).
	// Ownership passes to the executor with the Answer: the merge folds
	// it into the Result's lease, so the memory stays valid until the
	// caller calls Result.Release (or forever, if it never does — an
	// unreleased arena is garbage-collected, not corrupted).
	Release func()
}

// Device is one parallel device in an engine-driven cluster: it scans the
// qualified buckets the inverse mapper assigns to it for bucket query q,
// re-checking the value-level filters pm (hashing collides). A Device
// must honor ctx and return promptly — with ctx.Err() — once the context
// is cancelled; that is what makes executor deadlines leak-free.
type Device interface {
	Scan(ctx context.Context, q query.Query, pm mkhash.PartialMatch) (Answer, error)
}

// Result reports one retrieval: the matching records plus the simulated
// parallel cost breakdown.
type Result struct {
	// TraceID identifies the retrieval's trace (0 when the executor has
	// no tracer); join it against obs.Tracer.Recent/Trees to see the
	// span tree behind this result.
	TraceID uint64
	// Records are the matching records, grouped by device in device order.
	Records []mkhash.Record
	// DeviceBuckets[i] is the number of qualified buckets device i accessed.
	DeviceBuckets []int
	// DeviceRecords[i] is the number of records device i scanned.
	DeviceRecords []int
	// DeviceTime[i] is device i's simulated service time.
	DeviceTime []time.Duration
	// Response is the simulated parallel response time: the slowest device.
	Response time.Duration
	// TotalWork is the sum of all device times (what a single device would
	// have spent, modulo per-query overhead).
	TotalWork time.Duration
	// LargestResponseSize is max(DeviceBuckets), the paper's metric.
	LargestResponseSize int
	// Stages is the retrieval's cost-attribution breakdown (plan,
	// fanout, merge, audit, plus an aggregated device.scan sample),
	// populated when the executor has a cost profiler or flight
	// recorder attached; nil otherwise.
	Stages []obs.StageSample

	// lease releases the pooled memory backing Records when the result
	// was built in arena mode (Config.ArenaResults); nil for copy-out
	// results. Copies of the Result share the lease, and Release is
	// idempotent across them.
	lease *Lease
}

// Lease is a shared, idempotent release handle for arena-backed results:
// every copy of a Result holds the same *Lease, and the first Release
// wins. A nil *Lease is a released (or never-leased) result.
type Lease struct {
	once sync.Once
	f    func()
}

// NewLease wraps f; nil f yields a nil lease.
func NewLease(f func()) *Lease {
	if f == nil {
		return nil
	}
	return &Lease{f: f}
}

// Release runs the lease's release function exactly once across all
// copies. Safe on nil.
func (l *Lease) Release() {
	if l != nil {
		l.once.Do(l.f)
	}
}

// Release returns the result's records to their pooled arenas. Only
// arena-mode results (Config.ArenaResults / WithArenaResults) hold a
// lease; for copy-out results this is a no-op. After Release the
// result's Records — and every slice or string derived from them — are
// invalid. Idempotent, including across copies of the Result.
func (r *Result) Release() { r.lease.Release() }

// Lease returns the result's release handle (nil for copy-out results),
// letting wrappers project the result onto another type without losing
// the lease.
func (r Result) Lease() *Lease { return r.lease }

// SetLease attaches a release handle to the result — the inverse of
// Lease, for wrappers rebuilding a Result from a projected form.
func (r *Result) SetLease(l *Lease) { r.lease = l }

// AccumulateCost folds per-device service times and qualified-bucket
// counts into the §5.2.1 summary: response time is the slowest device,
// total work is the sum, and the largest response size is the biggest
// per-device bucket count. Every cost report in the system — executor
// merges and record-free simulations alike — goes through here.
func AccumulateCost(times []time.Duration, buckets []int) (response, totalWork time.Duration, largest int) {
	for _, t := range times {
		totalWork += t
		if t > response {
			response = t
		}
	}
	for _, b := range buckets {
		if b > largest {
			largest = b
		}
	}
	return response, totalWork, largest
}

// Matches re-checks actual field values against the query (hash
// collisions can put non-matching records in qualified buckets).
func Matches(pm mkhash.PartialMatch, r mkhash.Record) bool {
	for i, v := range pm {
		if v != nil && r[i] != *v {
			return false
		}
	}
	return true
}

// DeviceFailure wraps a device's scan error with the failing device's
// identity. The executor reports every failing device of a retrieval —
// match individual failures with errors.As.
type DeviceFailure struct {
	Device int
	Err    error
}

func (e *DeviceFailure) Error() string {
	return fmt.Sprintf("engine: device %d: %v", e.Device, e.Err)
}

func (e *DeviceFailure) Unwrap() error { return e.Err }

// TracedError wraps a retrieval error with the trace ID of the failed
// retrieval, so an error printed in a log line can be joined against
// /debug/traces output. It unwraps to the underlying error, so errors.Is
// and errors.As see through it. The executor attaches it to every
// retrieval error when a tracer is configured.
type TracedError struct {
	TraceID uint64
	Err     error
}

func (e *TracedError) Error() string {
	return fmt.Sprintf("%v (trace %d)", e.Err, e.TraceID)
}

func (e *TracedError) Unwrap() error { return e.Err }

// Auditor receives every finished retrieval for online optimality
// auditing (implemented by internal/audit): rq is |R(q)|, deviceBuckets
// the per-device qualified-bucket counts (nil for a failed retrieval),
// elapsed the wall-clock time. Called synchronously on the retrieval
// path — implementations must be cheap.
type Auditor interface {
	RetrievalDone(q query.Query, rq int, deviceBuckets []int, elapsed time.Duration)
}

// ExemplarObserver is an optional Observer extension. When the
// telemetry plane retains a query's trace tree (tail sampling), the
// executor calls RetrieveExemplar so the observer can attach an
// exemplar linking its latency histogram bucket to the kept trace ID.
type ExemplarObserver interface {
	RetrieveExemplar(elapsed time.Duration, traceID uint64)
}

// Attempt describes one failed device scan for Policy.Failure. N counts
// attempts on this logical device slot within one retrieval, starting at
// 1. Primary reports whether the failure came from the slot's original
// device (as opposed to a replacement a previous decision routed to) —
// circuit breakers only charge primaries.
type Attempt struct {
	Device  int
	N       int
	Primary bool
	Err     error
}

// Decision is a policy's answer to a failed attempt. The executor asks
// every policy in chain order and acts on the first Retry=true decision
// (later policies still observe the failure for their own bookkeeping).
// A nil Device re-asks the device that just failed; Delay, when
// positive, is slept (context-aware) before the next attempt.
type Decision struct {
	Retry  bool
	Device Device
	Delay  time.Duration
}

// Policy is one link of the executor's composable retry chain — the
// replacement for the bare RetryPolicy func. Allow runs before the
// first attempt on a device slot and may veto it (circuit breaker); the
// veto error then flows through Failure like a scan error, so a reroute
// policy further down the chain can still offer a backup. Failure is
// consulted on every failed attempt; Success on every successful one.
// All three run on executor workers and must be cheap and safe for
// concurrent use.
type Policy interface {
	Allow(ctx context.Context, dev int) error
	Failure(ctx context.Context, at Attempt) Decision
	Success(dev int, primary bool, elapsed time.Duration)
}

// Hedger arms backup requests against tail latency: when Plan reports a
// device is breaching its peers' p99, the executor races the primary
// scan against backup, started after the returned delay, and cancels
// the loser. Observe feeds completed primary scans back (only
// successful ones carry a latency sample); Hedged fires when a hedge is
// actually launched and HedgeWon when it beats the primary.
type Hedger interface {
	Plan(dev int) (backup Device, after time.Duration, ok bool)
	Hedged(dev int)
	HedgeWon(dev int)
	Observe(dev int, elapsed time.Duration, err error)
}

// Resilience bundles the executor's composable failure-handling hooks:
// the policy chain, the hedger, and graceful degradation. The zero
// value disables all three.
type Resilience struct {
	// Policies is the retry chain, consulted in order on every failed
	// attempt. When non-empty it replaces the legacy RetryPolicy func.
	Policies []Policy
	// Hedger, if set, races slow primary scans against a backup device.
	Hedger Hedger
	// Partial enables graceful degradation: when some devices fail and
	// at least one succeeds, Retrieve returns the merged partial result
	// alongside a *PartialError instead of discarding the answers.
	Partial bool
	// OnPartial, if set, observes every degraded retrieval (coverage is
	// the fraction of |R(q)| served; failed lists the failing devices).
	OnPartial func(coverage float64, failed []int)
}

// PartialError reports a degraded retrieval: retries, backups and
// hedges were exhausted for the devices in Failed, but the remaining
// devices answered. Res holds everything that was retrieved and
// Coverage the fraction of the query's |R(q)| qualified buckets it
// spans. It unwraps to the per-device failures, so errors.Is/As find
// the underlying causes, and is itself matchable with errors.As.
type PartialError struct {
	// Res is the merged result of the devices that answered.
	Res Result
	// Failed maps each failing device to its final error.
	Failed map[int]error
	// Coverage is the fraction of |R(q)| the result covers, in [0,1].
	Coverage float64
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("engine: partial result: %d device(s) failed, %.1f%% of |R(q)| covered", len(e.Failed), e.Coverage*100)
}

// Unwrap exposes the per-device failures (each a *DeviceFailure), in
// device order.
func (e *PartialError) Unwrap() []error {
	devs := make([]int, 0, len(e.Failed))
	for dev := range e.Failed {
		devs = append(devs, dev)
	}
	sort.Ints(devs)
	errs := make([]error, len(devs))
	for i, dev := range devs {
		errs[i] = &DeviceFailure{Device: dev, Err: e.Failed[dev]}
	}
	return errs
}
