package engine

import (
	"time"

	"fxdist/internal/mempool"
	"fxdist/internal/mkhash"
)

// Hot-path slab pools shared by every executor in the process. Per-device
// hit frames and the merged record slab are the big ones (they scale with
// result size); the rest are the per-call fan-out scratch that used to be
// allocated fresh on every retrieval. All sites reach them through the
// executor's accessors below, which return nil (a pass-through) when the
// executor was built with Config.NoPool — so "pooling off" is a data
// decision, not a second code path.
var (
	hitsPool    = mempool.NewSlicePool[mkhash.Record]("engine.hits")
	recsPool    = mempool.NewSlicePool[mkhash.Record]("engine.records")
	answersPool = mempool.NewSlicePool[Answer]("engine.answers")
	errsPool    = mempool.NewSlicePool[error]("engine.errs")
	dursPool    = mempool.NewSlicePool[time.Duration]("engine.durs")
	callsPool   = mempool.NewSlicePool[*call]("engine.calls")
)

// HitsPool returns the shared pool device adapters draw per-device hit
// frames from — the executor's merge returns every frame it consumes to
// this pool, so adapters and executor must agree on it. enabled=false
// returns nil, the nil pass-through pool (plain append semantics), which
// is how WithoutMemPool reaches the device adapters.
func HitsPool(enabled bool) *mempool.SlicePool[mkhash.Record] {
	if !enabled {
		return nil
	}
	return hitsPool
}

func (e *Executor) hitsP() *mempool.SlicePool[mkhash.Record] {
	if e.noPool {
		return nil
	}
	return hitsPool
}

func (e *Executor) answersP() *mempool.SlicePool[Answer] {
	if e.noPool {
		return nil
	}
	return answersPool
}

func (e *Executor) errsP() *mempool.SlicePool[error] {
	if e.noPool {
		return nil
	}
	return errsPool
}

func (e *Executor) dursP() *mempool.SlicePool[time.Duration] {
	if e.noPool {
		return nil
	}
	return dursPool
}

func (e *Executor) callsP() *mempool.SlicePool[*call] {
	if e.noPool {
		return nil
	}
	return callsPool
}

// arenaOn reports whether merged results lease pooled arenas (Config.
// ArenaResults); NoPool wins when both are set, because a disabled pool
// has nothing to lease from.
func (e *Executor) arenaOn() bool { return e.arena && !e.noPool }
