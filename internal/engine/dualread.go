package engine

import (
	"context"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"fxdist/internal/mkhash"
)

// DualReader answers retrievals during a live rescale window by racing
// the old-epoch and new-epoch read paths. The first complete answer
// wins and is returned to the caller — queries never wait on the
// migration — while the loser finishes in the background so the two
// answers can be cross-checked record-for-record. Any divergence is a
// migration bug (a bucket installed on the wrong owner, a stale view
// answering past cutover) and is counted, sampled, and surfaced to the
// rescale driver, which refuses to release the old epoch while
// mismatches exist.
//
// The cross-check is order-insensitive: retrieval results are grouped
// by device, and the two epochs assign buckets to different devices by
// construction, so the comparison hashes each record independently and
// sums the hashes (a commutative multiset digest). Collisions would
// need two distinct record multisets with equal FNV sums — not a
// concern for a consistency tripwire.
type DualReader struct {
	// Old and New answer one retrieval on the pre- and post-rescale
	// cluster respectively.
	Old func(ctx context.Context, pm mkhash.PartialMatch) (Result, error)
	New func(ctx context.Context, pm mkhash.PartialMatch) (Result, error)
	// OnMismatch, when set, is called once per diverging query with the
	// query and both answers. Called from the background checker; the
	// winner's Records are a private deep copy taken before Retrieve
	// returned (the caller may have Released the real result's pooled
	// lease by then), so the handler may hold them indefinitely.
	OnMismatch func(pm mkhash.PartialMatch, winner, loser Result)

	started    atomic.Uint64
	completed  atomic.Uint64
	mismatches atomic.Uint64
	oldWins    atomic.Uint64
	newWins    atomic.Uint64

	wg sync.WaitGroup
}

// DualReadStats is a snapshot of a DualReader's counters.
type DualReadStats struct {
	// Started is the number of dual reads issued.
	Started uint64 `json:"started"`
	// Completed is the number whose background cross-check finished.
	Completed uint64 `json:"completed"`
	// Mismatches is the number of diverging answers observed.
	Mismatches uint64 `json:"mismatches"`
	// OldWins / NewWins count which epoch answered first.
	OldWins uint64 `json:"old_wins"`
	NewWins uint64 `json:"new_wins"`
}

// Stats snapshots the reader's counters.
func (d *DualReader) Stats() DualReadStats {
	return DualReadStats{
		Started:    d.started.Load(),
		Completed:  d.completed.Load(),
		Mismatches: d.mismatches.Load(),
		OldWins:    d.oldWins.Load(),
		NewWins:    d.newWins.Load(),
	}
}

// Drain blocks until every in-flight background cross-check has
// finished. Call before reading final Stats at cutover.
func (d *DualReader) Drain() { d.wg.Wait() }

type dualAnswer struct {
	res Result
	err error
	old bool
}

// Retrieve races both epochs and returns the first successful answer.
// If the winner fails, the loser's answer is used instead; the query
// fails only when both paths fail. The slower successful answer is
// cross-checked against the returned one in the background.
func (d *DualReader) Retrieve(ctx context.Context, pm mkhash.PartialMatch) (Result, error) {
	d.started.Add(1)
	ch := make(chan dualAnswer, 2)
	run := func(f func(context.Context, mkhash.PartialMatch) (Result, error), old bool) {
		res, err := f(ctx, pm)
		ch <- dualAnswer{res: res, err: err, old: old}
	}
	go run(d.Old, true)
	go run(d.New, false)

	first := <-ch
	winner := first
	if first.err != nil {
		// The fast path failed; fall back to the slow one synchronously.
		second := <-ch
		if second.err != nil {
			d.completed.Add(1)
			return Result{}, first.err
		}
		winner = second
		d.recordWin(winner.old)
		d.completed.Add(1)
		return winner.res, nil
	}
	d.recordWin(winner.old)

	// Cross-check against the loser off the caller's path. The winner's
	// digest — and, when a mismatch handler wants the records, a deep
	// copy of them — is taken synchronously: the caller owns winner.res
	// after we return and may Release its lease, after which the pooled
	// record memory is rewritten under us.
	wsum := multisetDigest(winner.res.Records)
	winnerSnap := winner.res
	if d.OnMismatch != nil {
		winnerSnap.Records = cloneRecords(winner.res.Records)
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		defer d.completed.Add(1)
		second := <-ch
		if second.err != nil {
			// The loser failing is availability noise (the rescale may be
			// killing its servers under fault injection), not divergence.
			return
		}
		defer second.res.Release()
		if multisetDigest(second.res.Records) != wsum {
			d.mismatches.Add(1)
			if d.OnMismatch != nil {
				d.OnMismatch(pm, winnerSnap, second.res)
			}
		}
	}()
	return winner.res, nil
}

func (d *DualReader) recordWin(old bool) {
	if old {
		d.oldWins.Add(1)
	} else {
		d.newWins.Add(1)
	}
}

// cloneRecords deep-copies recs, including the field strings — arena
// results build those with unsafe.String over pooled slabs, so a
// shallow copy would still dangle after the lease is released.
func cloneRecords(recs []mkhash.Record) []mkhash.Record {
	out := make([]mkhash.Record, len(recs))
	for i, r := range recs {
		rec := make(mkhash.Record, len(r))
		for j, f := range r {
			rec[j] = strings.Clone(f)
		}
		out[i] = rec
	}
	return out
}

// multisetDigest hashes each record independently (fields length-
// prefixed, field order significant) and sums the hashes mod 2^64, so
// two results with the same records in any order digest equally.
func multisetDigest(recs []mkhash.Record) uint64 {
	var sum uint64
	var buf [10]byte
	for _, r := range recs {
		h := fnv.New64a()
		for _, f := range r {
			n := putUvarint(buf[:], uint64(len(f)))
			h.Write(buf[:n]) //nolint:errcheck // hash.Hash never errors
			h.Write([]byte(f))
		}
		sum += h.Sum64()
	}
	return sum
}

func putUvarint(b []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		b[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	b[i] = byte(v)
	return i + 1
}

// SortedRecords returns a copy of recs in a canonical order — the
// diff-friendly view OnMismatch handlers log.
func SortedRecords(recs []mkhash.Record) []mkhash.Record {
	out := append([]mkhash.Record(nil), recs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}
