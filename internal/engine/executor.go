package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
	"fxdist/internal/plancache"
	"fxdist/internal/query"
	"fxdist/internal/telemetry"
)

// Observer receives the executor's per-retrieval instrumentation events.
// RetrieveStarted fires before planning; exactly one RetrieveDone follows
// (with the wall-clock elapsed time, and the per-device qualified-bucket
// counts on success, nil on failure). RetrieveError fires once per failed
// retrieval, before its RetrieveDone.
type Observer interface {
	RetrieveStarted()
	RetrieveError()
	RetrieveDone(elapsed time.Duration, deviceBuckets []int)
}

// RetryPolicy decides what to do when a device's scan fails: return a
// replacement Device to re-ask (e.g. the ring successor holding the
// failed device's backup partition), or nil to let the failure stand.
// The policy runs on the worker that observed the failure, so rerouting
// happens immediately rather than in a second fan-out wave.
type RetryPolicy func(ctx context.Context, dev int, err error) Device

// Config assembles an Executor.
type Config struct {
	// Schema hashes value-level queries into bucket queries.
	Schema *mkhash.File
	// FS, when non-zero, validates bucket queries against the declustered
	// file system before fan-out. Backends that only know the schema (the
	// TCP coordinator validates server-side) leave it zero.
	FS decluster.FileSystem
	// Devices are the cluster's parallel devices, in device order.
	Devices []Device
	// Model prices each device's work; the zero model reports zero times.
	Model CostModel
	// Observer, if set, receives retrieval metrics events.
	Observer Observer
	// Tracer, if set, opens a span per retrieval.
	Tracer *obs.Tracer
	// Span names the tracer spans (e.g. "storage.retrieve").
	Span string
	// Workers bounds the worker pool; 0 means max(len(Devices), GOMAXPROCS).
	Workers int
	// Retry, if set, is consulted on every device failure. It is the
	// legacy single-shot reroute hook; when Resilience.Policies is
	// non-empty the policy chain takes over and Retry is ignored.
	Retry RetryPolicy
	// Resilience is the composable failure-handling configuration:
	// policy chain, hedger, graceful degradation. See Resilience.
	Resilience Resilience
	// Audit, if set, receives every finished retrieval for online
	// strict-optimality auditing and per-shape SLO accounting.
	Audit Auditor
	// Alloc, when set, is the group allocator behind Devices; it lets the
	// plan cache compile per-device qualified-bucket enumerations that
	// devices use instead of re-walking the inverse mapper.
	Alloc decluster.GroupAllocator
	// Plans, when set, caches compiled plans per (allocator identity,
	// query shape): a hit skips validation, |R(q)| and bound computation,
	// and (with Alloc set) the per-device enumeration. Nil or disabled
	// runs the uncached path.
	Plans *plancache.Cache
	// Profile, if set, receives every retrieval's per-stage cost
	// breakdown (wall time + alloc deltas), aggregated by query shape.
	Profile *obs.CostProfiler
	// Flight, if set, retains the slowest queries per shape with their
	// full stage breakdown and per-device detail.
	Flight *obs.FlightRecorder
	// Events, if set, receives one wide event per retrieval (shape,
	// plan-cache hit, stage costs, per-device buckets vs bound, trace
	// ID, error manifest). The log's keep decision also drives
	// tail-based trace retention and histogram exemplars: always-keep
	// queries (error / SLO-slow / bound-violating) retain their full
	// trace tree, the rest are uniform-sampled.
	Events *telemetry.EventLog
	// NoPool disables the hot-path buffer pools for this executor: all
	// fan-out scratch, hit frames and merged record slices come fresh
	// from the allocator, exactly the pre-pooling behaviour. The escape
	// hatch behind WithoutMemPool.
	NoPool bool
	// ArenaResults leases Result.Records (and any device-held decode
	// arenas) from the pools instead of copying out: zero-copy results
	// the caller must hand back with Result.Release. Ignored when NoPool
	// is set.
	ArenaResults bool
}

// Executor is the single retrieval code path shared by every backend:
// plan (validate once) → bounded fan-out over Devices → merge under the
// cost model. Executors are cheap and safe for concurrent use.
type Executor struct {
	schema *mkhash.File
	fs     decluster.FileSystem
	devs   []Device
	model  CostModel
	obs    Observer
	tracer *obs.Tracer
	span   string
	retry  RetryPolicy
	res    Resilience
	audit  Auditor
	alloc  decluster.GroupAllocator
	plans  *plancache.Cache
	prof   *obs.CostProfiler
	flight *obs.FlightRecorder
	events *telemetry.EventLog
	noPool bool
	arena  bool
	pool   *pool
}

// New builds an Executor from cfg.
func New(cfg Config) (*Executor, error) {
	if cfg.Schema == nil {
		return nil, errors.New("engine: config needs a schema")
	}
	if len(cfg.Devices) == 0 {
		return nil, errors.New("engine: config needs at least one device")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = len(cfg.Devices)
		if n := runtime.GOMAXPROCS(0); n > workers {
			workers = n
		}
	}
	return &Executor{
		schema: cfg.Schema,
		fs:     cfg.FS,
		devs:   cfg.Devices,
		model:  cfg.Model,
		obs:    cfg.Observer,
		tracer: cfg.Tracer,
		span:   cfg.Span,
		retry:  cfg.Retry,
		res:    cfg.Resilience,
		audit:  cfg.Audit,
		alloc:  cfg.Alloc,
		plans:  cfg.Plans,
		prof:   cfg.Profile,
		flight: cfg.Flight,
		events: cfg.Events,
		noPool: cfg.NoPool,
		arena:  cfg.ArenaResults,
		pool:   newPool(workers),
	}, nil
}

// Derive returns a copy of the executor with a different span name and
// retry policy, sharing the devices and worker pool. Backends use it to
// offer plain and failover retrieval over the same machinery.
func (e *Executor) Derive(span string, retry RetryPolicy) *Executor {
	d := *e
	d.span = span
	d.retry = retry
	return &d
}

// DeriveResilience returns a copy of the executor running under the
// given resilience configuration (policy chain, hedger, degraded mode),
// sharing the devices and worker pool. The legacy RetryPolicy is
// dropped from the copy — the chain subsumes it.
func (e *Executor) DeriveResilience(span string, r Resilience) *Executor {
	d := *e
	d.span = span
	d.retry = nil
	d.res = r
	return &d
}

// M returns the device count.
func (e *Executor) M() int { return len(e.devs) }

// Plans returns the executor's plan cache, nil when uncached.
func (e *Executor) Plans() *plancache.Cache { return e.plans }

// spanKey carries the retrieval's trace span through the context so that
// devices (e.g. the remote gob device) can attach protocol events to it.
type spanKey struct{}

// ContextWithSpan returns ctx carrying span.
func ContextWithSpan(ctx context.Context, span *obs.Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, span)
}

// SpanFromContext returns the retrieval span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *obs.Span {
	span, _ := ctx.Value(spanKey{}).(*obs.Span)
	return span
}

// lower hashes the value-level query into bucket coordinates. Range
// validation happens once per shape inside planFor, not per retrieval.
func (e *Executor) lower(pm mkhash.PartialMatch) (query.Query, error) {
	return e.schema.BucketQuery(pm)
}

// numQualified computes |R(q)|: the product of the unspecified field
// domain sizes. The validated file system is used when configured;
// backends that only know the schema (the TCP coordinator) fall back to
// its current directory sizes. With the plan cache enabled this runs
// once per shape and the result rides the cached plan, so the
// coordinator path and the auditor always agree on the strict bound —
// previously it was recomputed per retrieval and could drift as the
// schema's directory grew mid-workload.
func (e *Executor) numQualified(q query.Query) int {
	if e.fs.M > 0 {
		return q.NumQualified(e.fs)
	}
	sizes := e.schema.Sizes()
	n := 1
	for i, v := range q.Spec {
		if v == query.Unspecified && i < len(sizes) {
			n *= sizes[i]
		}
	}
	return n
}

// compile builds the plan for q's shape: validate once, then (with an
// allocator configured) compile the per-device tuple groups, otherwise
// a summary plan carrying only |R(q)| and the bound.
func (e *Executor) compile(q query.Query) (*plancache.Plan, error) {
	if e.fs.M > 0 {
		if err := q.Validate(e.fs); err != nil {
			return nil, err
		}
	}
	if e.alloc != nil {
		maxTuples := plancache.DefaultMaxTuples
		if e.plans != nil {
			maxTuples = e.plans.MaxTuples()
		}
		return plancache.Compile(e.alloc, q, maxTuples), nil
	}
	return plancache.Summary(q, e.numQualified(q), len(e.devs)), nil
}

// planFor returns q's retrieval plan, from the cache when enabled, and
// whether it was a cache hit. A cache hit skips validation entirely —
// sound because engine queries come from Schema.BucketQuery, which only
// produces in-range values, and the cache key's allocator identity pins
// the plan to this executor's allocator.
func (e *Executor) planFor(q query.Query) (*plancache.Plan, bool, error) {
	if e.plans != nil && e.plans.Enabled() {
		var owner any = e.schema
		if e.alloc != nil {
			owner = e.alloc
		}
		key := plancache.Key{Owner: plancache.IdentityOf(owner), Shape: q.Shape()}
		p, hit, err := e.plans.Get(key, func() (*plancache.Plan, error) { return e.compile(q) })
		return p, hit, err
	}
	// Uncached path: per-retrieval validation and |R(q)|, exactly the
	// pre-cache behaviour; the summary plan never reaches devices.
	if e.fs.M > 0 {
		if err := q.Validate(e.fs); err != nil {
			return nil, false, err
		}
	}
	return plancache.Summary(q, e.numQualified(q), len(e.devs)), false, nil
}

// callerKey carries the retrieval's caller attribution (a gateway
// tenant name, a batch job id, ...) through the context; callersKey
// carries a batch-aligned slice for coalesced multi-tenant batches.
type callerKey struct{}
type callersKey struct{}

// ContextWithCaller returns ctx attributing retrievals to caller; the
// wide-event query log records it as the event's tenant.
func ContextWithCaller(ctx context.Context, caller string) context.Context {
	if caller == "" {
		return ctx
	}
	return context.WithValue(ctx, callerKey{}, caller)
}

// CallerFromContext returns the caller attribution carried by ctx, or
// "".
func CallerFromContext(ctx context.Context) string {
	c, _ := ctx.Value(callerKey{}).(string)
	return c
}

// ContextWithCallers returns ctx attributing the queries of a batch
// retrieval to callers, index-aligned with the batch: query i of a
// RetrieveBatch under this context is attributed to callers[i]. This is
// how a coalescing gateway drives one engine batch on behalf of many
// tenants and still gets per-tenant wide events.
func ContextWithCallers(ctx context.Context, callers []string) context.Context {
	if len(callers) == 0 {
		return ctx
	}
	return context.WithValue(ctx, callersKey{}, callers)
}

// CallersFromContext returns the batch-aligned caller attributions
// carried by ctx, or nil.
func CallersFromContext(ctx context.Context) []string {
	c, _ := ctx.Value(callersKey{}).([]string)
	return c
}

// planKey carries the retrieval's compiled plan through the context so
// device adapters can enumerate their qualified buckets from the cached
// tuple groups instead of re-walking the inverse mapper.
type planKey struct{}

// ContextWithPlan returns ctx carrying p (only tuple-carrying plans are
// attached).
func ContextWithPlan(ctx context.Context, p *plancache.Plan) context.Context {
	if p == nil || !p.Ready() {
		return ctx
	}
	return context.WithValue(ctx, planKey{}, p)
}

// PlanFromContext returns the compiled plan carried by ctx, or nil.
func PlanFromContext(ctx context.Context) *plancache.Plan {
	p, _ := ctx.Value(planKey{}).(*plancache.Plan)
	return p
}

// call is one in-flight fan-out: per-device answer slots plus an atomic
// countdown that closes done when the last device task finishes. Waiters
// that give up early (context cancelled) simply abandon the call; the
// remaining tasks write into the call's private slices and exit.
type call struct {
	t0      time.Time
	span    *obs.Span
	q       query.Query
	caller  string // attribution for the wide-event query log
	rq      int    // |R(q)| for the optimality audit
	answers []Answer
	errs    []error
	pending atomic.Int64
	done    chan struct{}

	// Cost-attribution state, populated only when the executor has a
	// profiler or flight recorder (instr true). started is the
	// retrieval's entry time (plan stage included, unlike t0 which marks
	// fan-out start); mark/lastStamp walk the alloc counter and clock
	// from stage boundary to stage boundary.
	instr     bool
	started   time.Time
	shape     string
	planHit   bool
	planWall  time.Duration
	planAlloc obs.AllocStat
	mark      obs.AllocStat
	lastStamp time.Time

	fanoutWall  time.Duration
	fanoutAlloc obs.AllocStat
	mergeWall   time.Duration
	mergeAlloc  obs.AllocStat
	devDur      []time.Duration
	stages      []obs.StageSample
}

// settled reports whether every device task has finished. Observing the
// closed done channel is the happens-before edge that makes the
// per-device slices (answers, errs, devDur) safe to read; an abandoned
// call (waiter cancelled, stragglers still writing) is not settled and
// its per-device state must not be touched.
func (c *call) settled() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// stampFanout closes the fanout stage (fan-out start → last device
// answer); no-op on uninstrumented calls.
func (c *call) stampFanout() {
	if !c.instr {
		return
	}
	now := time.Now()
	c.fanoutWall = now.Sub(c.t0)
	a := obs.ReadAllocs()
	c.fanoutAlloc = a.Sub(c.mark)
	c.mark = a
	c.lastStamp = now
}

// stampMerge closes the merge stage (answer consolidation, including
// failure triage and degraded merges); no-op on uninstrumented calls.
func (c *call) stampMerge() {
	if !c.instr {
		return
	}
	now := time.Now()
	c.mergeWall = now.Sub(c.lastStamp)
	a := obs.ReadAllocs()
	c.mergeAlloc = a.Sub(c.mark)
	c.mark = a
	c.lastStamp = now
}

// callInstr carries the plan-stage measurements from the retrieval
// entry point into launch when cost attribution is on.
type callInstr struct {
	started   time.Time
	planHit   bool
	planWall  time.Duration
	planAlloc obs.AllocStat
	mark      obs.AllocStat
}

// launch starts the fan-out for one planned query and returns without
// waiting: every device's scan is queued on the shared pool. The plan's
// |R(q)| feeds the audit; its tuple groups (when compiled) travel to
// the devices via the context. ci, when non-nil, turns on per-stage
// cost attribution for this call.
func (e *Executor) launch(ctx context.Context, q query.Query, plan *plancache.Plan, pm mkhash.PartialMatch, caller string, ci *callInstr) *call {
	m := len(e.devs)
	c := &call{
		t0:      time.Now(),
		q:       q,
		caller:  caller,
		rq:      plan.RQ,
		answers: e.answersP().Get(m),
		errs:    e.errsP().Get(m),
		done:    make(chan struct{}),
	}
	if ci != nil {
		c.instr = true
		c.started = ci.started
		c.shape = q.Shape()
		c.planHit = ci.planHit
		c.planWall = ci.planWall
		c.planAlloc = ci.planAlloc
		c.mark = ci.mark
		c.devDur = e.dursP().Get(m)
	}
	if e.tracer != nil && e.span != "" {
		c.span = e.tracer.Start(e.span)
	}
	c.pending.Store(int64(m))
	ctx = ContextWithSpan(ctx, c.span)
	ctx = ContextWithPlan(ctx, plan)
	for dev := 0; dev < m; dev++ {
		dev := dev
		e.pool.submit(func() {
			defer func() {
				if c.pending.Add(-1) == 0 {
					close(c.done)
				}
			}()
			if err := ctx.Err(); err != nil {
				c.errs[dev] = err
				return
			}
			if c.instr {
				start := time.Now()
				c.answers[dev], c.errs[dev] = e.scanDevice(ctx, dev, q, pm)
				c.devDur[dev] = time.Since(start)
				return
			}
			c.answers[dev], c.errs[dev] = e.scanDevice(ctx, dev, q, pm)
		})
	}
	return c
}

// wait blocks until every device task finished or ctx is cancelled, then
// merges. On cancellation it returns promptly with ctx's error; straggler
// tasks keep draining in the background into the abandoned call and exit
// on their next context check.
func (e *Executor) wait(ctx context.Context, c *call) (Result, error) {
	select {
	case <-c.done:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	c.stampFanout()
	res, err := e.consolidate(ctx, c)
	c.stampMerge()
	return res, err
}

// consolidate turns the call's per-device answers into one Result:
// failure triage, graceful degradation, or the plain merge.
func (e *Executor) consolidate(ctx context.Context, c *call) (Result, error) {
	var failures []error
	for dev, err := range c.errs {
		if err != nil {
			failures = append(failures, &DeviceFailure{Device: dev, Err: err})
		}
	}
	if len(failures) > 0 {
		if e.res.Partial && len(failures) < len(c.errs) && ctx.Err() == nil {
			return e.degrade(c)
		}
		e.discardAnswers(c.answers)
		return Result{}, errors.Join(failures...)
	}
	return e.merge(c.answers, nil), nil
}

// discardAnswers recycles the hit frames and arena leases of answers
// that will never be merged (a retrieval failed outright after some
// devices had already answered). Only called once every device task has
// finished — never on an abandoned call.
func (e *Executor) discardAnswers(answers []Answer) {
	for i := range answers {
		a := &answers[i]
		if a.Release != nil {
			a.Release()
			a.Release = nil
		}
		e.hitsP().Put(a.Hits)
		a.Hits = nil
	}
}

// merge folds per-device answers into a Result under the cost model;
// failed[dev], when non-nil, marks devices whose answers are skipped.
//
// Records consolidate in one pass into a single exactly-sized slice —
// sized by summing the per-device hit counts first, so the old
// append-and-regrow copying (the cost profiler's biggest byte line) is
// gone. In arena mode the slice is a pooled slab and the result carries
// a lease; otherwise it is a fresh caller-owned allocation. Either way
// the per-device hit frames are drained back to the pool, and any
// device-held arena releases fold into the lease.
func (e *Executor) merge(answers []Answer, failed map[int]error) Result {
	m := len(answers)
	res := Result{
		DeviceBuckets: make([]int, m),
		DeviceRecords: make([]int, m),
		DeviceTime:    make([]time.Duration, m),
	}
	total := 0
	for dev := range answers {
		a := &answers[dev]
		if a.Idle || failed[dev] != nil {
			continue
		}
		res.DeviceBuckets[dev] = a.Buckets
		res.DeviceRecords[dev] = a.Records
		res.DeviceTime[dev] = e.model.DeviceTime(a.Buckets, a.Records)
		total += len(a.Hits)
	}
	arena := e.arenaOn()
	if arena {
		res.Records = recsPool.Get(total)[:0]
	} else if total > 0 {
		res.Records = make([]mkhash.Record, 0, total)
	}
	var rels []func()
	for dev := range answers {
		a := &answers[dev]
		if a.Idle || failed[dev] != nil {
			// A failed device's answer is zero by convention; discard
			// defensively in case an adapter returned one anyway.
			e.discardAnswers(answers[dev : dev+1])
			continue
		}
		res.Records = append(res.Records, a.Hits...)
		e.hitsP().Put(a.Hits)
		a.Hits = nil
		if a.Release != nil {
			rels = append(rels, a.Release)
			a.Release = nil
		}
	}
	if arena || len(rels) > 0 {
		recs := res.Records
		res.lease = NewLease(func() {
			if arena {
				recsPool.Put(recs)
			}
			for _, f := range rels {
				f()
			}
		})
	}
	res.Response, res.TotalWork, res.LargestResponseSize = AccumulateCost(res.DeviceTime, res.DeviceBuckets)
	return res
}

// degrade builds the graceful-degradation answer for a partially failed
// fan-out: the merged result of the devices that answered, plus a
// *PartialError carrying the per-device error manifest and the fraction
// of |R(q)| the surviving devices covered.
func (e *Executor) degrade(c *call) (Result, error) {
	failed := make(map[int]error)
	failedDevs := make([]int, 0, len(c.errs))
	for dev, err := range c.errs {
		if err != nil {
			failed[dev] = err
			failedDevs = append(failedDevs, dev)
		}
	}
	sort.Ints(failedDevs)
	res := e.merge(c.answers, failed)
	covered := 0
	for _, b := range res.DeviceBuckets {
		covered += b
	}
	coverage := 1.0
	if c.rq > 0 {
		coverage = float64(covered) / float64(c.rq)
		if coverage > 1 {
			coverage = 1
		}
	}
	if c.span != nil {
		c.span.Event(fmt.Sprintf("degraded: %d device(s) failed, coverage %.3f", len(failed), coverage))
	}
	if e.res.OnPartial != nil {
		e.res.OnPartial(coverage, failedDevs)
	}
	perr := &PartialError{Res: res, Failed: failed, Coverage: coverage}
	return res, perr
}

// finish closes the call's span, audits the retrieval against the
// strict-optimality bound, reports it to the observer, and — when cost
// attribution is on — records the stage breakdown with the profiler and
// flight recorder.
func (e *Executor) finish(c *call, res Result, err error) {
	if c.span != nil {
		if err != nil {
			c.span.Event("error: " + err.Error())
		}
		c.span.End()
	}
	elapsed := time.Since(c.t0)
	if c.instr && c.lastStamp.IsZero() {
		// Cancelled before the fan-out completed: open the audit stage
		// here so record still sees consistent marks.
		c.lastStamp = time.Now()
	}
	if e.audit != nil {
		if err != nil {
			e.audit.RetrievalDone(c.q, c.rq, nil, elapsed)
		} else {
			e.audit.RetrievalDone(c.q, c.rq, res.DeviceBuckets, elapsed)
		}
	}
	if e.obs != nil {
		if err != nil {
			e.obs.RetrieveError()
			e.obs.RetrieveDone(elapsed, nil)
		} else {
			e.obs.RetrieveDone(elapsed, res.DeviceBuckets)
		}
	}
	// An abandoned call's stragglers may still be writing the per-device
	// slices; record and emit only read them once the call settled.
	settled := c.settled()
	if c.instr {
		e.record(c, err, settled)
	}
	if e.events != nil {
		e.emit(c, res, err, settled)
	}
}

// emit offers the retrieval's wide event to the query log and mirrors
// the keep decision into tail-based trace retention: an always-keep
// event (error / SLO-slow / bound-violating) retains the query's full
// trace tree; everything else goes through the uniform sampler. When
// the trace is retained, the latency histogram gets an exemplar
// pointing at it (via the optional ExemplarObserver), closing the loop
// bucket → trace ID → kept tree.
func (e *Executor) emit(c *call, res Result, err error, settled bool) {
	m := len(c.answers)
	bound := 0
	if m > 0 {
		bound = (c.rq + m - 1) / m
	}
	elapsed := time.Since(c.t0)
	start := c.t0
	if c.instr {
		elapsed = time.Since(c.started)
		start = c.started
	}
	ev := telemetry.Event{
		Time:         start,
		Shape:        c.q.Shape(),
		Tenant:       c.caller,
		TraceID:      c.span.Trace(),
		Elapsed:      elapsed,
		PlanCacheHit: c.planHit,
		RQ:           c.rq,
		Bound:        bound,
		Stages:       c.stages,
	}
	if settled {
		ev.Devices = make([]telemetry.DeviceSample, m)
		for dev := 0; dev < m; dev++ {
			ds := telemetry.DeviceSample{Device: dev, Buckets: c.answers[dev].Buckets}
			if c.devDur != nil {
				ds.Scan = c.devDur[dev]
			}
			if c.errs[dev] != nil {
				ds.Err = c.errs[dev].Error()
			}
			ev.Devices[dev] = ds
			if ds.Buckets > ev.MaxDeviceBuckets {
				ev.MaxDeviceBuckets = ds.Buckets
			}
		}
	}
	// The audited bucket counts are the merged result's (a degraded
	// merge zeroes failed devices); the violation check uses those.
	for _, b := range res.DeviceBuckets {
		if bound > 0 && b > bound {
			ev.BoundViolation = true
		}
	}
	if err != nil {
		ev.Err = err.Error()
		var pe *PartialError
		if errors.As(err, &pe) {
			ev.Partial = true
			ev.Coverage = pe.Coverage
			for dev := range pe.Failed {
				ev.FailedDevices = append(ev.FailedDevices, dev)
			}
			sort.Ints(ev.FailedDevices)
		}
	}
	dec := e.events.Offer(ev)
	tid := c.span.Trace()
	if tid == 0 || e.tracer == nil {
		return
	}
	retained := false
	if dec.Always {
		reason := obs.KeepError
		for _, r := range dec.Reasons {
			if r == obs.KeepError || r == obs.KeepSlow || r == obs.KeepBound {
				reason = r
				break
			}
		}
		retained = e.tracer.Retain(tid, reason)
	} else {
		retained = e.tracer.MaybeSample(tid)
	}
	if retained {
		if eo, ok := e.obs.(ExemplarObserver); ok {
			eo.RetrieveExemplar(elapsed, tid)
		}
	}
}

// stageSample folds one stage's wall time and alloc delta — heap and
// pool-recycled traffic both — into a profiler sample.
func stageSample(stage string, wall time.Duration, a obs.AllocStat) obs.StageSample {
	return obs.StageSample{
		Stage: stage, Wall: wall,
		Bytes: a.Bytes, Objects: a.Objects,
		RecycledBytes: a.RecycledBytes, RecycledSlabs: a.RecycledSlabs,
	}
}

// record closes the audit stage, hands the completed stage breakdown to
// the profiler, and offers the query to the flight recorder.
func (e *Executor) record(c *call, err error, settled bool) {
	now := time.Now()
	auditWall := now.Sub(c.lastStamp)
	a := obs.ReadAllocs()
	auditAlloc := a.Sub(c.mark)
	total := now.Sub(c.started)
	var devSum time.Duration
	if settled {
		for _, d := range c.devDur {
			devSum += d
		}
	}
	c.stages = []obs.StageSample{
		stageSample(obs.StagePlan, c.planWall, c.planAlloc),
		stageSample(obs.StageFanout, c.fanoutWall, c.fanoutAlloc),
		stageSample(obs.StageMerge, c.mergeWall, c.mergeAlloc),
		stageSample(obs.StageAudit, auditWall, auditAlloc),
		{Stage: obs.StageDeviceScan, Wall: devSum},
	}
	e.prof.ObserveQuery(c.shape, total, c.stages)
	if !e.flight.Admits(c.shape, total) {
		return
	}
	m := len(c.answers)
	bound := 0
	if m > 0 {
		bound = (c.rq + m - 1) / m
	}
	rec := obs.FlightRecord{
		Shape:        c.shape,
		TraceID:      c.span.Trace(),
		Start:        c.started,
		Elapsed:      total,
		PlanCacheHit: c.planHit,
		RQ:           c.rq,
		Bound:        bound,
		Stages:       c.stages,
		Events:       c.span.Snapshot().Events,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	if settled {
		rec.Devices = make([]obs.FlightDevice, m)
		for dev := 0; dev < m; dev++ {
			fd := obs.FlightDevice{Device: dev, Buckets: c.answers[dev].Buckets, Scan: c.devDur[dev]}
			if c.errs[dev] != nil {
				fd.Err = c.errs[dev].Error()
			}
			rec.Devices[dev] = fd
		}
	}
	e.flight.Note(rec)
}

// seal stamps the call's trace ID onto the result and, on failure, wraps
// the error so log lines carry the trace ID.
func (c *call) seal(res Result, err error) (Result, error) {
	tid := c.span.Trace()
	res.TraceID = tid
	res.Stages = c.stages
	if err != nil {
		if pe, ok := err.(*PartialError); ok {
			pe.Res.TraceID = tid
		}
		if tid != 0 {
			err = &TracedError{TraceID: tid, Err: err}
		}
	}
	return res, err
}

// recycle returns the call's fan-out scratch to the pools — but only
// when every device task has finished. An abandoned call (the waiter
// gave up on context cancellation) may still have straggler tasks
// writing into answers/errs/devDur; its scratch is left to the garbage
// collector, which is safe, just unrecycled.
func (e *Executor) recycle(c *call) {
	select {
	case <-c.done:
	default:
		return
	}
	e.answersP().Put(c.answers)
	c.answers = nil
	e.errsP().Put(c.errs)
	c.errs = nil
	e.dursP().Put(c.devDur)
	c.devDur = nil
}

// planFailed reports a retrieval that died before fan-out.
func (e *Executor) planFailed(t0 time.Time) {
	if e.obs == nil {
		return
	}
	e.obs.RetrieveError()
	e.obs.RetrieveDone(time.Since(t0), nil)
}

// Retrieve answers one value-level partial match query: validate once,
// fan out every device's inverse-mapped scan on the bounded pool, merge
// under the cost model. Cancelling ctx returns promptly with its error.
func (e *Executor) Retrieve(ctx context.Context, pm mkhash.PartialMatch) (Result, error) {
	if e.obs != nil {
		e.obs.RetrieveStarted()
	}
	instr := e.prof != nil || e.flight != nil || e.events != nil
	t0 := time.Now()
	var a0 obs.AllocStat
	if instr {
		a0 = obs.ReadAllocs()
	}
	q, err := e.lower(pm)
	if err != nil {
		e.planFailed(t0)
		return Result{}, err
	}
	plan, hit, err := e.planFor(q)
	if err != nil {
		e.planFailed(t0)
		return Result{}, err
	}
	var ci *callInstr
	if instr {
		a1 := obs.ReadAllocs()
		ci = &callInstr{started: t0, planHit: hit, planWall: time.Since(t0), planAlloc: a1.Sub(a0), mark: a1}
	}
	c := e.launch(ctx, q, plan, pm, CallerFromContext(ctx), ci)
	res, err := e.wait(ctx, c)
	e.finish(c, res, err)
	res, err = c.seal(res, err)
	e.recycle(c)
	return res, err
}

// RetrieveBatch answers a batch of queries over the shared worker pool:
// every query's fan-out is launched up front, so devices pipeline across
// queries instead of idling at per-query barriers. Each query gets its
// own trace span and metrics events. Queries sharing a shape are
// deduped through the plan cache: the first occurrence compiles, the
// rest reuse its plan. The returned slice always has one Result per
// query; queries that failed have a zero Result and contribute a
// "query %d" error to the joined error.
func (e *Executor) RetrieveBatch(ctx context.Context, pms []mkhash.PartialMatch) ([]Result, error) {
	results := make([]Result, len(pms))
	// Batch-internal scratch recycles across calls: the per-query error
	// and call-handle slices come from the pools, and each finished
	// query's fan-out scratch goes back before the next one completes.
	errs := e.errsP().Get(len(pms))
	calls := e.callsP().Get(len(pms))
	instr := e.prof != nil || e.flight != nil || e.events != nil
	callers := CallersFromContext(ctx)
	defCaller := CallerFromContext(ctx)
	for i, pm := range pms {
		if e.obs != nil {
			e.obs.RetrieveStarted()
		}
		t0 := time.Now()
		var a0 obs.AllocStat
		if instr {
			a0 = obs.ReadAllocs()
		}
		q, err := e.lower(pm)
		if err != nil {
			errs[i] = err
			e.planFailed(t0)
			continue
		}
		plan, hit, err := e.planFor(q)
		if err != nil {
			errs[i] = err
			e.planFailed(t0)
			continue
		}
		var ci *callInstr
		if instr {
			a1 := obs.ReadAllocs()
			ci = &callInstr{started: t0, planHit: hit, planWall: time.Since(t0), planAlloc: a1.Sub(a0), mark: a1}
		}
		caller := defCaller
		if i < len(callers) {
			caller = callers[i]
		}
		calls[i] = e.launch(ctx, q, plan, pm, caller, ci)
	}
	for i, c := range calls {
		if c == nil {
			continue
		}
		res, err := e.wait(ctx, c)
		e.finish(c, res, err)
		results[i], errs[i] = c.seal(res, err)
		e.recycle(c)
	}
	var joined []error
	for i, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("query %d: %w", i, err))
		}
	}
	e.errsP().Put(errs)
	e.callsP().Put(calls)
	if len(joined) > 0 {
		return results, errors.Join(joined...)
	}
	return results, nil
}
