package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"fxdist/internal/mkhash"
)

func dualResult(recs ...mkhash.Record) Result {
	return Result{Records: recs}
}

func leg(res Result, err error, delay time.Duration) func(context.Context, mkhash.PartialMatch) (Result, error) {
	return func(ctx context.Context, _ mkhash.PartialMatch) (Result, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
		}
		return res, err
	}
}

func TestDualReaderFastLegWins(t *testing.T) {
	recs := dualResult(mkhash.Record{"a", "b"}, mkhash.Record{"c", "d"})
	d := &DualReader{
		Old: leg(recs, nil, 0),
		New: leg(recs, nil, 50*time.Millisecond),
	}
	res, err := d.Retrieve(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("got %d records", len(res.Records))
	}
	d.Drain()
	st := d.Stats()
	if st.OldWins != 1 || st.NewWins != 0 {
		t.Errorf("wins old=%d new=%d, want the fast old leg", st.OldWins, st.NewWins)
	}
	if st.Started != 1 || st.Completed != 1 || st.Mismatches != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestDualReaderFallsBackWhenWinnerFails(t *testing.T) {
	recs := dualResult(mkhash.Record{"x"})
	d := &DualReader{
		Old: leg(Result{}, errors.New("old epoch down"), 0),
		New: leg(recs, nil, 10*time.Millisecond),
	}
	res, err := d.Retrieve(context.Background(), nil)
	if err != nil {
		t.Fatalf("fallback leg should have answered: %v", err)
	}
	if len(res.Records) != 1 || res.Records[0][0] != "x" {
		t.Fatalf("got %v", res.Records)
	}
	d.Drain()
	if st := d.Stats(); st.NewWins != 1 || st.Completed != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestDualReaderBothLegsFail(t *testing.T) {
	fastErr := errors.New("fast failure")
	d := &DualReader{
		Old: leg(Result{}, fastErr, 0),
		New: leg(Result{}, errors.New("slow failure"), 10*time.Millisecond),
	}
	if _, err := d.Retrieve(context.Background(), nil); err == nil {
		t.Fatal("both legs failed but Retrieve succeeded")
	} else if !errors.Is(err, fastErr) {
		t.Fatalf("got %v, want the first error", err)
	}
	d.Drain()
	if st := d.Stats(); st.Completed != 1 || st.OldWins+st.NewWins != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestDualReaderLoserErrorIsNotMismatch(t *testing.T) {
	d := &DualReader{
		Old: leg(dualResult(mkhash.Record{"a"}), nil, 0),
		New: leg(Result{}, errors.New("chaos"), 10*time.Millisecond),
	}
	if _, err := d.Retrieve(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	d.Drain()
	if st := d.Stats(); st.Mismatches != 0 {
		t.Errorf("loser error counted as mismatch: %+v", st)
	}
}

func TestDualReaderMismatchDetectedAcrossOrder(t *testing.T) {
	// Same multiset in a different order must NOT trip the check...
	a := dualResult(mkhash.Record{"a", "b"}, mkhash.Record{"c", "d"})
	b := dualResult(mkhash.Record{"c", "d"}, mkhash.Record{"a", "b"})
	d := &DualReader{
		Old: leg(a, nil, 0),
		New: leg(b, nil, 5*time.Millisecond),
	}
	if _, err := d.Retrieve(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	d.Drain()
	if st := d.Stats(); st.Mismatches != 0 {
		t.Errorf("reordered identical results flagged: %+v", st)
	}

	// ...while an actually divergent answer must.
	var gotMismatch mkhash.PartialMatch
	called := false
	d2 := &DualReader{
		Old: leg(a, nil, 0),
		New: leg(dualResult(mkhash.Record{"a", "b"}), nil, 5*time.Millisecond),
		OnMismatch: func(pm mkhash.PartialMatch, winner, loser Result) {
			called = true
			gotMismatch = pm
			if len(winner.Records) != 2 || len(loser.Records) != 1 {
				t.Errorf("handler got winner %d / loser %d records", len(winner.Records), len(loser.Records))
			}
		},
	}
	v := "k"
	pm := mkhash.PartialMatch{&v, nil}
	if _, err := d2.Retrieve(context.Background(), pm); err != nil {
		t.Fatal(err)
	}
	d2.Drain()
	if st := d2.Stats(); st.Mismatches != 1 {
		t.Errorf("divergent answers not counted: %+v", st)
	}
	if !called || len(gotMismatch) != 2 || gotMismatch[0] == nil || *gotMismatch[0] != "k" {
		t.Errorf("OnMismatch not invoked with the query: called=%v pm=%v", called, gotMismatch)
	}
}

// TestDualReaderMismatchWinnerIsStableCopy pins the OnMismatch
// contract: the winner handed to the handler is a deep copy taken
// before Retrieve returned, so a caller releasing the real result's
// pooled lease (and the pool rewriting its memory) after Retrieve
// cannot corrupt what the handler sees.
func TestDualReaderMismatchWinnerIsStableCopy(t *testing.T) {
	winnerRecs := []mkhash.Record{{"a", "1"}}
	got := make(chan Result, 1)
	gate := make(chan struct{})
	d := &DualReader{
		Old: leg(Result{Records: winnerRecs}, nil, 0),
		New: func(ctx context.Context, _ mkhash.PartialMatch) (Result, error) {
			<-gate
			return dualResult(mkhash.Record{"divergent"}), nil
		},
		OnMismatch: func(_ mkhash.PartialMatch, winner, _ Result) { got <- winner },
	}
	res, err := d.Retrieve(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The caller owns res now and may Release it — model the pool
	// rewriting the backing memory before the cross-check runs.
	res.Records[0][0] = "scribbled"
	close(gate)
	d.Drain()
	w := <-got
	if len(w.Records) != 1 || w.Records[0][0] != "a" || w.Records[0][1] != "1" {
		t.Fatalf("OnMismatch winner aliases released memory: %v", w.Records)
	}
}

func TestMultisetDigestProperties(t *testing.T) {
	a := []mkhash.Record{{"ab", "c"}, {"x"}}
	b := []mkhash.Record{{"x"}, {"ab", "c"}}
	if multisetDigest(a) != multisetDigest(b) {
		t.Error("digest is order-sensitive")
	}
	// Field boundaries matter: ["ab","c"] vs ["a","bc"].
	c := []mkhash.Record{{"a", "bc"}, {"x"}}
	if multisetDigest(a) == multisetDigest(c) {
		t.Error("digest ignores field boundaries")
	}
	if multisetDigest(nil) != 0 {
		t.Error("empty digest not zero")
	}
}

func TestSortedRecordsCanonical(t *testing.T) {
	in := []mkhash.Record{{"b"}, {"a", "z"}, {"a"}}
	got := SortedRecords(in)
	want := []mkhash.Record{{"a"}, {"a", "z"}, {"b"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// The input is untouched.
	if !reflect.DeepEqual(in, []mkhash.Record{{"b"}, {"a", "z"}, {"a"}}) {
		t.Fatal("SortedRecords mutated its input")
	}
}
