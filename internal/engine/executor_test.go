package engine_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fxdist/internal/engine"
	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

func testSchema(t *testing.T) *mkhash.File {
	t.Helper()
	f := mkhash.MustNew(mkhash.Schema{
		Fields: []string{"a", "b"},
		Depths: []int{2, 2},
	})
	return f
}

func anyQuery(t *testing.T, f *mkhash.File) mkhash.PartialMatch {
	t.Helper()
	pm, err := f.Spec(map[string]string{})
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

// fixedDevice answers every scan with a canned Answer.
type fixedDevice struct {
	ans engine.Answer
	err error
}

func (d fixedDevice) Scan(ctx context.Context, q query.Query, pm mkhash.PartialMatch) (engine.Answer, error) {
	return d.ans, d.err
}

// slowDevice blocks until its delay elapses or the context is cancelled.
type slowDevice struct {
	delay time.Duration
	ans   engine.Answer
}

func (d slowDevice) Scan(ctx context.Context, q query.Query, pm mkhash.PartialMatch) (engine.Answer, error) {
	select {
	case <-time.After(d.delay):
		return d.ans, nil
	case <-ctx.Done():
		return engine.Answer{}, ctx.Err()
	}
}

func rec(vals ...string) mkhash.Record { return mkhash.Record(vals) }

func newExec(t *testing.T, f *mkhash.File, devs ...engine.Device) *engine.Executor {
	t.Helper()
	e, err := engine.New(engine.Config{Schema: f, Devices: devs, Model: engine.MainMemory})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRetrieveMergesUnderCostModel(t *testing.T) {
	f := testSchema(t)
	e := newExec(t, f,
		fixedDevice{ans: engine.Answer{Buckets: 2, Records: 5, Hits: []mkhash.Record{rec("x", "1")}}},
		fixedDevice{ans: engine.Answer{Buckets: 7, Records: 9, Hits: []mkhash.Record{rec("y", "2"), rec("z", "3")}}},
		fixedDevice{ans: engine.Answer{Idle: true}},
	)
	res, err := e.Retrieve(context.Background(), anyQuery(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 || res.Records[0][0] != "x" || res.Records[2][0] != "z" {
		t.Fatalf("merged records wrong: %v", res.Records)
	}
	m := engine.MainMemory
	for dev, want := range []time.Duration{
		m.DeviceTime(2, 5),
		m.DeviceTime(7, 9),
		0, // idle devices are not charged PerQuery
	} {
		if res.DeviceTime[dev] != want {
			t.Errorf("device %d time %v, want %v", dev, res.DeviceTime[dev], want)
		}
	}
	if res.Response != m.DeviceTime(7, 9) {
		t.Errorf("Response = %v, want slowest device", res.Response)
	}
	if res.TotalWork != m.DeviceTime(2, 5)+m.DeviceTime(7, 9) {
		t.Errorf("TotalWork = %v", res.TotalWork)
	}
	if res.LargestResponseSize != 7 {
		t.Errorf("LargestResponseSize = %d, want 7", res.LargestResponseSize)
	}
}

// Every failing device must be reported, not just the first.
func TestRetrieveReportsAllFailingDevices(t *testing.T) {
	f := testSchema(t)
	e := newExec(t, f,
		fixedDevice{err: errors.New("boom-0")},
		fixedDevice{ans: engine.Answer{Buckets: 1}},
		fixedDevice{err: errors.New("boom-2")},
	)
	_, err := e.Retrieve(context.Background(), anyQuery(t, f))
	if err == nil {
		t.Fatal("no error")
	}
	var df *engine.DeviceFailure
	if !errors.As(err, &df) {
		t.Fatalf("error %v does not unwrap to DeviceFailure", err)
	}
	for _, want := range []string{"device 0", "boom-0", "device 2", "boom-2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestRetryPolicyReroutes(t *testing.T) {
	f := testSchema(t)
	var consulted atomic.Int32
	e, err := engine.New(engine.Config{
		Schema: f,
		Model:  engine.MainMemory,
		Devices: []engine.Device{
			fixedDevice{ans: engine.Answer{Buckets: 1, Hits: []mkhash.Record{rec("a", "1")}}},
			fixedDevice{err: errors.New("dead")},
		},
		Retry: func(ctx context.Context, dev int, scanErr error) engine.Device {
			consulted.Add(1)
			if dev != 1 {
				t.Errorf("retry consulted for healthy device %d", dev)
			}
			return fixedDevice{ans: engine.Answer{Buckets: 3, Hits: []mkhash.Record{rec("b", "2")}}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Retrieve(context.Background(), anyQuery(t, f))
	if err != nil {
		t.Fatalf("retry did not rescue the retrieval: %v", err)
	}
	if consulted.Load() != 1 {
		t.Errorf("retry consulted %d times, want 1", consulted.Load())
	}
	if res.DeviceBuckets[1] != 3 || len(res.Records) != 2 {
		t.Errorf("replacement answer not used: buckets=%v records=%d", res.DeviceBuckets, len(res.Records))
	}
}

// Cancelling mid-retrieve must return promptly with the context's error
// and leave no goroutines behind (satellite: context-deadline coverage).
func TestRetrieveCancelPromptNoLeak(t *testing.T) {
	f := testSchema(t)
	e := newExec(t, f,
		fixedDevice{ans: engine.Answer{Buckets: 1}},
		slowDevice{delay: 30 * time.Second},
	)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Retrieve(ctx, anyQuery(t, f))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the fan-out start
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Retrieve did not return promptly after cancel")
	}
	// The straggler worker must observe the cancel and exit.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRetrieveDeadline(t *testing.T) {
	f := testSchema(t)
	e := newExec(t, f, slowDevice{delay: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := e.Retrieve(ctx, anyQuery(t, f))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(t0) > 2*time.Second {
		t.Fatalf("deadline not honored promptly (%v)", time.Since(t0))
	}
}

func TestWorkerPoolBounded(t *testing.T) {
	f := testSchema(t)
	var inflight, peak atomic.Int32
	probe := func() engine.Device {
		return fixedDeviceFunc(func(ctx context.Context) (engine.Answer, error) {
			n := inflight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inflight.Add(-1)
			return engine.Answer{Buckets: 1}, nil
		})
	}
	devs := make([]engine.Device, 8)
	for i := range devs {
		devs[i] = probe()
	}
	e, err := engine.New(engine.Config{Schema: f, Devices: devs, Model: engine.MainMemory, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Retrieve(context.Background(), anyQuery(t, f)); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("observed %d concurrent scans, pool bound is 2", p)
	}
}

// fixedDeviceFunc adapts a func to the Device interface.
type fixedDeviceFunc func(ctx context.Context) (engine.Answer, error)

func (f fixedDeviceFunc) Scan(ctx context.Context, q query.Query, pm mkhash.PartialMatch) (engine.Answer, error) {
	return f(ctx)
}

func TestRetrieveBatch(t *testing.T) {
	f := testSchema(t)
	e := newExec(t, f,
		fixedDevice{ans: engine.Answer{Buckets: 2, Records: 3, Hits: []mkhash.Record{rec("a", "1")}}},
		fixedDevice{ans: engine.Answer{Buckets: 4, Records: 1}},
	)
	pms := make([]mkhash.PartialMatch, 5)
	for i := range pms {
		pms[i] = anyQuery(t, f)
	}
	// One bad query in the middle: wrong arity fails at planning.
	pms[2] = make(mkhash.PartialMatch, 1)
	results, err := e.RetrieveBatch(context.Background(), pms)
	if err == nil {
		t.Fatal("bad query did not surface in the joined error")
	}
	if !strings.Contains(err.Error(), "query 2") {
		t.Errorf("joined error %q does not index the failing query", err)
	}
	if len(results) != len(pms) {
		t.Fatalf("got %d results for %d queries", len(results), len(pms))
	}
	for i, res := range results {
		if i == 2 {
			if len(res.Records) != 0 {
				t.Errorf("failed query %d has a non-zero result", i)
			}
			continue
		}
		if res.DeviceBuckets[0] != 2 || res.DeviceBuckets[1] != 4 || len(res.Records) != 1 {
			t.Errorf("query %d merged wrong: %+v", i, res)
		}
	}
}

func TestDeriveSharesDevicesChangesPolicy(t *testing.T) {
	f := testSchema(t)
	base, err := engine.New(engine.Config{
		Schema:  f,
		Model:   engine.MainMemory,
		Devices: []engine.Device{fixedDevice{err: errors.New("dead")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Retrieve(context.Background(), anyQuery(t, f)); err == nil {
		t.Fatal("base executor should fail")
	}
	rescued := base.Derive("", func(ctx context.Context, dev int, scanErr error) engine.Device {
		return fixedDevice{ans: engine.Answer{Buckets: 1}}
	})
	if _, err := rescued.Retrieve(context.Background(), anyQuery(t, f)); err != nil {
		t.Fatalf("derived executor with retry failed: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	f := testSchema(t)
	if _, err := engine.New(engine.Config{Devices: []engine.Device{fixedDevice{}}}); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := engine.New(engine.Config{Schema: f}); err == nil {
		t.Error("zero devices accepted")
	}
}

func TestAccumulateCost(t *testing.T) {
	resp, total, largest := engine.AccumulateCost(
		[]time.Duration{3 * time.Millisecond, 9 * time.Millisecond, 1 * time.Millisecond},
		[]int{4, 2, 7},
	)
	if resp != 9*time.Millisecond {
		t.Errorf("response = %v", resp)
	}
	if total != 13*time.Millisecond {
		t.Errorf("total = %v", total)
	}
	if largest != 7 {
		t.Errorf("largest = %d", largest)
	}
}

func ExampleExecutor_RetrieveBatch() {
	f := mkhash.MustNew(mkhash.Schema{Fields: []string{"k"}, Depths: []int{1}})
	e, _ := engine.New(engine.Config{
		Schema:  f,
		Model:   engine.MainMemory,
		Devices: []engine.Device{fixedDevice{ans: engine.Answer{Buckets: 1}}},
	})
	pm, _ := f.Spec(map[string]string{})
	results, _ := e.RetrieveBatch(context.Background(), []mkhash.PartialMatch{pm, pm})
	fmt.Println(len(results), results[0].LargestResponseSize)
	// Output: 2 1
}
