package engine

import (
	"strconv"
	"time"

	"fxdist/internal/obs"
)

// ClusterMetrics is the standard Observer for storage-style clusters,
// cached at construction. The cluster label separates the in-memory,
// durable (disk-backed) and replicated (failure-injecting) retrieval
// paths; metric names keep the fxdist_storage prefix the dashboards
// already scrape.
//
// The per-device counters accumulate qualified-bucket accesses over the
// cluster's whole lifetime; imbalance is their max/mean ratio — the
// paper's strict-optimality criterion (§5.2.1: response time is the
// slowest device) measured on real traffic. 1.0 means the allocator is
// spreading observed queries perfectly.
type ClusterMetrics struct {
	retrieves     *obs.Counter
	errors        *obs.Counter
	latency       *obs.Histogram
	deviceBuckets []*obs.Counter
	imbalance     *obs.Gauge
}

// NewClusterMetrics registers (or revives) the metric family for one
// cluster kind with m devices.
func NewClusterMetrics(cluster string, m int) *ClusterMetrics {
	r := obs.Default()
	cl := obs.L("cluster", cluster)
	cm := &ClusterMetrics{
		retrieves: r.Counter("fxdist_storage_retrieves_total",
			"Retrievals answered by this cluster kind.", cl),
		errors: r.Counter("fxdist_storage_retrieve_errors_total",
			"Retrievals that failed on this cluster kind.", cl),
		latency: r.Histogram("fxdist_storage_retrieve_seconds",
			"Wall-clock retrieval latency (all devices, merge included).", nil, cl),
		imbalance: r.Gauge("fxdist_storage_load_imbalance_ratio",
			"Max/mean of cumulative per-device qualified-bucket counts; 1.0 is a perfectly balanced declustering.", cl),
	}
	cm.deviceBuckets = make([]*obs.Counter, m)
	for dev := range cm.deviceBuckets {
		cm.deviceBuckets[dev] = r.Counter("fxdist_storage_device_qualified_buckets_total",
			"Qualified buckets accessed per device.", cl, obs.L("device", strconv.Itoa(dev)))
	}
	return cm
}

// RetrieveStarted implements Observer.
func (cm *ClusterMetrics) RetrieveStarted() { cm.retrieves.Inc() }

// RetrieveExemplar implements ExemplarObserver: a tail-sampled query
// links its latency bucket to the retained trace.
func (cm *ClusterMetrics) RetrieveExemplar(elapsed time.Duration, traceID uint64) {
	cm.latency.SetExemplar(elapsed.Seconds(), traceID)
}

// RetrieveError implements Observer.
func (cm *ClusterMetrics) RetrieveError() { cm.errors.Inc() }

// RetrieveDone implements Observer: it records the latency and, on
// success, folds the per-device bucket counts into the cumulative
// counters and refreshes the live imbalance gauge.
func (cm *ClusterMetrics) RetrieveDone(elapsed time.Duration, deviceBuckets []int) {
	cm.latency.Observe(elapsed.Seconds())
	if deviceBuckets == nil {
		return
	}
	for dev, b := range deviceBuckets {
		if b > 0 {
			cm.deviceBuckets[dev].Add(uint64(b))
		}
	}
	var sum, max uint64
	for _, c := range cm.deviceBuckets {
		v := c.Value()
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return
	}
	mean := float64(sum) / float64(len(cm.deviceBuckets))
	cm.imbalance.Set(float64(max) / mean)
}
