package engine_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"fxdist/internal/audit"
	"fxdist/internal/decluster"
	"fxdist/internal/engine"
	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

// allocDevice answers with the exact qualified-bucket count the inverse
// mapper assigns to its device — no records, just the load shape the
// auditor judges.
type allocDevice struct {
	im  *query.InverseMapper
	dev int
}

func (d allocDevice) Scan(_ context.Context, q query.Query, _ mkhash.PartialMatch) (engine.Answer, error) {
	return engine.Answer{Buckets: d.im.CountOnDevice(q, d.dev)}, nil
}

// auditExec builds an executor whose devices realise alloc's bucket
// placement, reporting into the named audit backend.
func auditExec(t *testing.T, f *mkhash.File, fs decluster.FileSystem, alloc decluster.GroupAllocator, backend string) *engine.Executor {
	t.Helper()
	im := query.NewInverseMapper(alloc)
	devices := make([]engine.Device, fs.M)
	for dev := range devices {
		devices[dev] = allocDevice{im: im, dev: dev}
	}
	e, err := engine.New(engine.Config{
		Schema:  f,
		FS:      fs,
		Devices: devices,
		Audit:   audit.For(backend),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestAuditorFlagsModuloSparesFX retrieves through real allocators on a
// 2×2×2 grid over M=4: FX on an unspecified-{a,b} shape is strict
// optimal (every device serves exactly one of the four qualified
// buckets), while Modulo on an unspecified-{a,c} shape — the paper's §4
// adversarial case, two small fields whose coordinate sums collide mod M
// — must overload one device past the bound ceil(4/4)=1. The auditor has
// to report exactly what the ground-truth load vectors say.
func TestAuditorFlagsModuloSparesFX(t *testing.T) {
	f := mkhash.MustNew(mkhash.Schema{Fields: []string{"a", "b", "c"}, Depths: []int{1, 1, 1}})
	fs, err := decluster.NewFileSystem([]int{2, 2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := decluster.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	mod := decluster.NewModulo(fs)

	cval := "v"
	fxPM := mkhash.PartialMatch{nil, nil, &cval}  // shape "**s": unspecified {a,b}
	modPM := mkhash.PartialMatch{nil, &cval, nil} // shape "*s*": unspecified {a,c}

	run := func(backend string, alloc decluster.GroupAllocator, pm mkhash.PartialMatch) query.Query {
		e := auditExec(t, f, fs, alloc, backend)
		if _, err := e.Retrieve(context.Background(), pm); err != nil {
			t.Fatal(err)
		}
		q, err := f.BucketQuery(pm)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	fxQ := run("engine-test-fx", fx, fxPM)
	modQ := run("engine-test-modulo", mod, modPM)

	// Ground truth: the brute-force load vectors the auditor must agree with.
	bound := audit.Bound(4, fs.M)
	if got := query.LargestLoad(fx, fxQ); got != bound {
		t.Fatalf("premise: FX largest load %d, want bound %d", got, bound)
	}
	modWorst := query.LargestLoad(mod, modQ)
	if modWorst <= bound {
		t.Fatalf("premise: Modulo largest load %d not adversarial (bound %d)", modWorst, bound)
	}

	fxShape := shapeReport(t, "engine-test-fx", audit.ShapeOf(fxQ))
	if fxShape.Violations != 0 || fxShape.MaxDeviation != 0 {
		t.Errorf("FX audited: %d violations, max deviation %d; want strict optimal", fxShape.Violations, fxShape.MaxDeviation)
	}
	if fxShape.Queries != 1 || fxShape.Bound != bound || fxShape.RQ != 4 {
		t.Errorf("FX shape row wrong: %+v", fxShape)
	}

	modShape := shapeReport(t, "engine-test-modulo", audit.ShapeOf(modQ))
	if modShape.Violations != 1 {
		t.Errorf("Modulo violations = %d, want 1", modShape.Violations)
	}
	if want := modWorst - bound; modShape.MaxDeviation != want {
		t.Errorf("Modulo max deviation = %d, want %d (largest load %d - bound %d)",
			modShape.MaxDeviation, want, modWorst, bound)
	}
	// Deviation is bounded: no device can exceed |R(q)| total buckets.
	if modShape.MaxDeviation > modShape.RQ-bound {
		t.Errorf("deviation %d exceeds |R(q)|-bound = %d", modShape.MaxDeviation, modShape.RQ-bound)
	}
}

// TestAuditorCountsFailedRetrievals: a failed retrieval reaches the
// auditor with nil buckets — counted per shape, never a violation.
func TestAuditorCountsFailedRetrievals(t *testing.T) {
	f := testSchema(t)
	e, err := engine.New(engine.Config{
		Schema:  f,
		Devices: []engine.Device{fixedDevice{err: errors.New("boom")}},
		Audit:   audit.For("engine-test-fail"),
	})
	if err != nil {
		t.Fatal(err)
	}
	pm := anyQuery(t, f)
	if _, err := e.Retrieve(context.Background(), pm); err == nil {
		t.Fatal("retrieval should fail")
	}
	q, err := f.BucketQuery(pm)
	if err != nil {
		t.Fatal(err)
	}
	s := shapeReport(t, "engine-test-fail", audit.ShapeOf(q))
	if s.Queries != 1 || s.Violations != 0 {
		t.Errorf("failed retrieval audited as %+v, want 1 query / 0 violations", s)
	}
}

func shapeReport(t *testing.T, backend, shape string) audit.ShapeReport {
	t.Helper()
	for _, s := range audit.For(backend).Report().Shapes {
		if s.Shape == shape {
			return s
		}
	}
	t.Fatalf("backend %s has no shape %q", backend, shape)
	return audit.ShapeReport{}
}

// TestSLOThroughExecutor wires a latency objective through the executor:
// a slow device makes every query of its shape bad.
func TestSLOThroughExecutor(t *testing.T) {
	audit.SetSLO("engine-test-slo", audit.SLO{Target: time.Nanosecond, Goal: 0.99})
	f := testSchema(t)
	e, err := engine.New(engine.Config{
		Schema:  f,
		Devices: []engine.Device{fixedDevice{ans: engine.Answer{Buckets: 1}}},
		Audit:   audit.For("engine-test-slo"),
	})
	if err != nil {
		t.Fatal(err)
	}
	pm := anyQuery(t, f)
	if _, err := e.Retrieve(context.Background(), pm); err != nil {
		t.Fatal(err)
	}
	q, err := f.BucketQuery(pm)
	if err != nil {
		t.Fatal(err)
	}
	s := shapeReport(t, "engine-test-slo", audit.ShapeOf(q))
	if s.Bad != 1 || s.Good != 0 {
		t.Errorf("1ns objective: good=%d bad=%d, want 0/1", s.Good, s.Bad)
	}
	if s.BurnRate <= 1 {
		t.Errorf("burn rate = %g, want > 1 (budget exhausted)", s.BurnRate)
	}
}
