package engine_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"fxdist/internal/engine"
	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

// flakyDevice fails its first failures scans, then succeeds.
type flakyDevice struct {
	failures int32
	calls    atomic.Int32
	ans      engine.Answer
}

func (d *flakyDevice) Scan(ctx context.Context, q query.Query, pm mkhash.PartialMatch) (engine.Answer, error) {
	if d.calls.Add(1) <= d.failures {
		return engine.Answer{}, errors.New("flaky")
	}
	return d.ans, nil
}

// retryNPolicy retries up to n attempts on the same device (Device nil
// keeps the slot's current device and its primary flag).
type retryNPolicy struct {
	n     int
	dev   engine.Device // when non-nil, Failure offers this replacement
	delay time.Duration
}

func (p *retryNPolicy) Allow(ctx context.Context, dev int) error { return nil }

func (p *retryNPolicy) Failure(ctx context.Context, at engine.Attempt) engine.Decision {
	if at.N >= p.n {
		return engine.Decision{}
	}
	return engine.Decision{Retry: true, Device: p.dev, Delay: p.delay}
}

func (p *retryNPolicy) Success(dev int, primary bool, elapsed time.Duration) {}

// An empty Resilience (nil policy chain) must behave exactly like the
// bare executor: the failure stands, no retry loop engages.
func TestResilienceNilPoliciesFallsThrough(t *testing.T) {
	f := testSchema(t)
	e := newExec(t, f, fixedDevice{err: errors.New("dead")})
	d := e.DeriveResilience("", engine.Resilience{})
	if _, err := d.Retrieve(context.Background(), anyQuery(t, f)); err == nil {
		t.Fatal("empty resilience rescued a dead device")
	}
}

// A policy that re-asks the same failed device (Decision.Device nil)
// must re-run the same device and stop when the policy declines.
func TestPolicyRetriesSameDevice(t *testing.T) {
	f := testSchema(t)
	dev := &flakyDevice{failures: 2, ans: engine.Answer{Buckets: 1, Hits: []mkhash.Record{rec("a", "1")}}}
	base := newExec(t, f, dev)
	e := base.DeriveResilience("", engine.Resilience{Policies: []engine.Policy{&retryNPolicy{n: 5}}})
	res, err := e.Retrieve(context.Background(), anyQuery(t, f))
	if err != nil {
		t.Fatalf("retries did not rescue: %v", err)
	}
	if got := dev.calls.Load(); got != 3 {
		t.Errorf("device scanned %d times, want 3 (2 failures + success)", got)
	}
	if len(res.Records) != 1 {
		t.Errorf("records = %v", res.Records)
	}

	// Same policy, device that never recovers: the budget must bound it.
	dead := &flakyDevice{failures: 1 << 30}
	e2 := newExec(t, f, dead).DeriveResilience("", engine.Resilience{Policies: []engine.Policy{&retryNPolicy{n: 4}}})
	if _, err := e2.Retrieve(context.Background(), anyQuery(t, f)); err == nil {
		t.Fatal("dead device rescued")
	}
	if got := dead.calls.Load(); got != 4 {
		t.Errorf("dead device scanned %d times, want MaxAttempts=4", got)
	}
}

// A policy offering a replacement device must see the replacement's
// answer merged, and later attempts are non-primary.
func TestPolicyReplacementDevice(t *testing.T) {
	f := testSchema(t)
	alt := fixedDevice{ans: engine.Answer{Buckets: 2, Hits: []mkhash.Record{rec("b", "2")}}}
	e := newExec(t, f, fixedDevice{err: errors.New("dead")}).
		DeriveResilience("", engine.Resilience{Policies: []engine.Policy{&retryNPolicy{n: 3, dev: alt}}})
	res, err := e.Retrieve(context.Background(), anyQuery(t, f))
	if err != nil {
		t.Fatalf("replacement did not rescue: %v", err)
	}
	if res.DeviceBuckets[0] != 2 || len(res.Records) != 1 {
		t.Errorf("replacement answer not used: %+v", res)
	}
}

// Cancelling during a policy backoff sleep must return promptly with
// the context's error and leave no goroutines behind.
func TestPolicyRetryCancelNoLeak(t *testing.T) {
	f := testSchema(t)
	e := newExec(t, f, fixedDevice{err: errors.New("dead")}).
		DeriveResilience("", engine.Resilience{
			Policies: []engine.Policy{&retryNPolicy{n: 1 << 30, delay: 30 * time.Second}},
		})
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Retrieve(ctx, anyQuery(t, f))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the backoff sleep start
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Retrieve did not return promptly after cancel mid-backoff")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Partial mode: a retrieval where some devices fail returns the
// survivors' merged answer plus a PartialError manifest with coverage.
func TestPartialResult(t *testing.T) {
	f := testSchema(t)
	var gotCoverage float64
	var gotFailed []int
	e := newExec(t, f,
		fixedDevice{ans: engine.Answer{Buckets: 1, Hits: []mkhash.Record{rec("a", "1")}}},
		fixedDevice{err: errors.New("dead")},
		fixedDevice{ans: engine.Answer{Buckets: 2, Hits: []mkhash.Record{rec("b", "2")}}},
	).DeriveResilience("", engine.Resilience{
		Partial: true,
		OnPartial: func(c float64, failed []int) {
			gotCoverage, gotFailed = c, append([]int(nil), failed...)
		},
	})
	res, err := e.Retrieve(context.Background(), anyQuery(t, f))
	if err == nil {
		t.Fatal("partial retrieval returned no error manifest")
	}
	var pe *engine.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err %v does not unwrap to PartialError", err)
	}
	if len(pe.Failed) != 1 || pe.Failed[1] == nil {
		t.Errorf("manifest = %v, want device 1", pe.Failed)
	}
	if len(res.Records) != 2 || len(pe.Res.Records) != 2 {
		t.Errorf("survivor records missing: res=%d pe=%d", len(res.Records), len(pe.Res.Records))
	}
	// |R(q)| for the all-free query is 2^(2+2)=16; survivors covered 1+2.
	if want := 3.0 / 16.0; pe.Coverage != want {
		t.Errorf("coverage = %v, want %v", pe.Coverage, want)
	}
	if gotCoverage != pe.Coverage || len(gotFailed) != 1 || gotFailed[0] != 1 {
		t.Errorf("OnPartial saw coverage=%v failed=%v", gotCoverage, gotFailed)
	}
	// DeviceFailure for the dead device must still unwrap.
	var df *engine.DeviceFailure
	if !errors.As(err, &df) || df.Device != 1 {
		t.Errorf("PartialError does not unwrap to the device failure: %v", err)
	}
}

// All devices failing must never degrade — that is a total failure.
func TestPartialNeedsSurvivors(t *testing.T) {
	f := testSchema(t)
	e := newExec(t, f,
		fixedDevice{err: errors.New("dead-0")},
		fixedDevice{err: errors.New("dead-1")},
	).DeriveResilience("", engine.Resilience{Partial: true})
	_, err := e.Retrieve(context.Background(), anyQuery(t, f))
	if err == nil {
		t.Fatal("total failure returned nil error")
	}
	if _, ok := err.(*engine.TracedError); ok {
		err = errors.Unwrap(err)
	}
	var pe *engine.PartialError
	if errors.As(err, &pe) {
		t.Fatal("total failure degraded into a partial result")
	}
}

// stubHedger always plans the given backup after a fixed delay.
type stubHedger struct {
	backup engine.Device
	after  time.Duration
	hedged atomic.Int32
	won    atomic.Int32
}

func (h *stubHedger) Plan(dev int) (engine.Device, time.Duration, bool) {
	return h.backup, h.after, true
}
func (h *stubHedger) Hedged(dev int)                                    { h.hedged.Add(1) }
func (h *stubHedger) HedgeWon(dev int)                                  { h.won.Add(1) }
func (h *stubHedger) Observe(dev int, elapsed time.Duration, err error) {}

// A slow primary must lose to its hedged backup, and the hedger hooks
// must fire.
func TestHedgeBackupWins(t *testing.T) {
	f := testSchema(t)
	h := &stubHedger{
		backup: fixedDevice{ans: engine.Answer{Buckets: 9, Hits: []mkhash.Record{rec("h", "1")}}},
		after:  5 * time.Millisecond,
	}
	e := newExec(t, f, slowDevice{delay: 30 * time.Second}).
		DeriveResilience("", engine.Resilience{
			Policies: []engine.Policy{&retryNPolicy{n: 1}},
			Hedger:   h,
		})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := e.Retrieve(ctx, anyQuery(t, f))
	if err != nil {
		t.Fatalf("hedge did not rescue the slow primary: %v", err)
	}
	if res.DeviceBuckets[0] != 9 {
		t.Errorf("backup answer not used: %v", res.DeviceBuckets)
	}
	if h.hedged.Load() != 1 || h.won.Load() != 1 {
		t.Errorf("hedged=%d won=%d, want 1/1", h.hedged.Load(), h.won.Load())
	}
}

// A fast primary must win before the hedge timer fires.
func TestHedgePrimaryWins(t *testing.T) {
	f := testSchema(t)
	h := &stubHedger{
		backup: fixedDevice{ans: engine.Answer{Buckets: 9}},
		after:  10 * time.Second,
	}
	e := newExec(t, f, fixedDevice{ans: engine.Answer{Buckets: 1}}).
		DeriveResilience("", engine.Resilience{
			Policies: []engine.Policy{&retryNPolicy{n: 1}},
			Hedger:   h,
		})
	res, err := e.Retrieve(context.Background(), anyQuery(t, f))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceBuckets[0] != 1 {
		t.Errorf("primary answer not used: %v", res.DeviceBuckets)
	}
	if h.hedged.Load() != 0 {
		t.Errorf("hedge launched for a fast primary")
	}
}
