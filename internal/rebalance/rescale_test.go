package rebalance

import (
	"strings"
	"testing"

	"fxdist/internal/audit"
	"fxdist/internal/decluster"
)

func mustFS(t *testing.T, sizes []int, m int) decluster.FileSystem {
	t.Helper()
	fs, err := decluster.NewFileSystem(sizes, m)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestPlanGrowthSingleField covers the degenerate one-field file: every
// child bucket's device is determined by the lone field's contribution.
func TestPlanGrowthSingleField(t *testing.T) {
	oldAlloc := decluster.NewModulo(mustFS(t, []int{8}, 4))
	newAlloc := decluster.NewModulo(mustFS(t, []int{16}, 4))
	plan, err := PlanGrowth(oldAlloc, newAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != 16 {
		t.Fatalf("total %d, want 16", plan.Total)
	}
	if plan.Stayed+plan.Moved != plan.Total {
		t.Fatalf("stayed %d + moved %d != total %d", plan.Stayed, plan.Moved, plan.Total)
	}
	// Low children keep their parent's cell value, hence its device.
	if plan.Stayed < 8 {
		t.Errorf("stayed %d, want at least the 8 low children", plan.Stayed)
	}
}

// TestPlanGrowthWidestField doubles the widest field of a skewed grid.
func TestPlanGrowthWidestField(t *testing.T) {
	fsOld := mustFS(t, []int{16, 2}, 4)
	fsNew := mustFS(t, []int{32, 2}, 4)
	fxOld, err := decluster.NewFX(fsOld)
	if err != nil {
		t.Fatal(err)
	}
	fxNew, err := decluster.NewFX(fsNew)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanGrowth(fxOld, fxNew, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != 64 {
		t.Fatalf("total %d, want 64", plan.Total)
	}
	in, out := 0, 0
	for d := 0; d < 4; d++ {
		in += plan.PerDeviceIn[d]
		out += plan.PerDeviceOut[d]
	}
	if in != plan.Moved || out != plan.Moved {
		t.Errorf("per-device in %d / out %d, want both %d", in, out, plan.Moved)
	}
}

// TestPlanGrowthRejectsMismatchedM: growth never changes M; a doubled
// device count is a rescale, not a growth, and must be rejected.
func TestPlanGrowthRejectsMismatchedM(t *testing.T) {
	oldAlloc := decluster.NewModulo(mustFS(t, []int{8, 4}, 4))
	newAlloc := decluster.NewModulo(mustFS(t, []int{16, 4}, 8))
	if _, err := PlanGrowth(oldAlloc, newAlloc, 0); err == nil {
		t.Fatal("PlanGrowth accepted allocators with different M")
	}
}

// TestFileSystemRejectsNonPowerOfTwoM documents the grid precondition
// every rescale inherits: M must be a power of two for the T_M low-bit
// arithmetic to exist at all.
func TestFileSystemRejectsNonPowerOfTwoM(t *testing.T) {
	if _, err := decluster.NewFileSystem([]int{8, 4}, 3); err == nil {
		t.Fatal("NewFileSystem accepted M=3")
	}
	if _, err := decluster.NewFileSystem([]int{8, 4}, 6); err == nil {
		t.Fatal("NewFileSystem accepted M=6")
	}
}

// rescalePair builds old and new allocators from a spec and its doubled
// form.
func rescalePair(t *testing.T, spec decluster.Spec, newM int) (decluster.GroupAllocator, decluster.GroupAllocator) {
	t.Helper()
	oldAlloc, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	nspec, err := spec.Rescaled(newM)
	if err != nil {
		t.Fatal(err)
	}
	newAlloc, err := nspec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return oldAlloc, newAlloc
}

// TestRescaleDerivationIdentity checks PlanRescale's derived owners
// against brute force for the xor/add families, both directions, and
// confirms VerifyDerivation agrees.
func TestRescaleDerivationIdentity(t *testing.T) {
	specs := []decluster.Spec{
		{Sizes: []int{8, 4, 2}, M: 4, Method: decluster.MethodModulo},
		{Sizes: []int{8, 8}, M: 4, Method: decluster.MethodGDM, Multipliers: []int{1, 3}},
	}
	// An FX spec needs planned kinds; derive them from a real plan.
	fx, err := decluster.NewFX(mustFS(t, []int{8, 4, 2}, 4))
	if err != nil {
		t.Fatal(err)
	}
	fxSpec, err := decluster.SpecOf(fx)
	if err != nil {
		t.Fatal(err)
	}
	specs = append(specs, fxSpec)

	for _, spec := range specs {
		for _, newM := range []int{2 * spec.M, spec.M / 2} {
			oldAlloc, newAlloc := rescalePair(t, spec, newM)
			if err := VerifyDerivation(oldAlloc, newAlloc); err != nil {
				t.Errorf("%s %d→%d: derivation refuted: %v", spec.Method, spec.M, newM, err)
			}
			plan, err := PlanRescale(oldAlloc, newAlloc)
			if err != nil {
				t.Fatal(err)
			}
			if !plan.Derivable {
				t.Errorf("%s %d→%d: plan not derivable", spec.Method, spec.M, newM)
			}
			// Brute force: every bucket's new owner recomputed from
			// scratch must match the plan's move (or be a stay).
			ofs := oldAlloc.FileSystem()
			moved := make(map[int]Move, len(plan.Moves))
			for _, mv := range plan.Moves {
				moved[mv.Bucket] = mv
			}
			ofs.EachBucket(func(b []int) {
				from, to := oldAlloc.Device(b), newAlloc.Device(b)
				idx := ofs.Linear(b)
				if mv, ok := moved[idx]; ok {
					if mv.From != from || mv.To != to {
						t.Errorf("%s %d→%d bucket %d: plan %d→%d, brute force %d→%d",
							spec.Method, spec.M, newM, idx, mv.From, mv.To, from, to)
					}
				} else if from != to {
					t.Errorf("%s %d→%d bucket %d: moved %d→%d but plan says stay",
						spec.Method, spec.M, newM, idx, from, to)
				}
			})
		}
	}
}

// TestRescaleDHWNotDerivable: the DHW latin-square allocator's radical-
// inverse permutation depends on M's bit width, so its owners are NOT
// low-bit derivable across a rescale — the exact planner must still
// produce a correct (just larger) move set.
func TestRescaleDHWNotDerivable(t *testing.T) {
	fsOld := mustFS(t, []int{8, 8}, 4)
	fsNew := mustFS(t, []int{8, 8}, 8)
	oldAlloc := decluster.NewDHW(fsOld)
	newAlloc := decluster.NewDHW(fsNew)
	if err := VerifyDerivation(oldAlloc, newAlloc); err == nil {
		t.Error("VerifyDerivation claims DHW owners are derivable")
	}
	plan, err := PlanRescale(oldAlloc, newAlloc)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Derivable {
		t.Error("plan claims DHW owners are derivable")
	}
	// The plan is still exact: replaying its moves onto the old layout
	// must reproduce the new layout.
	owner := make(map[int]int)
	ofs := oldAlloc.FileSystem()
	ofs.EachBucket(func(b []int) { owner[ofs.Linear(b)] = oldAlloc.Device(b) })
	for _, mv := range plan.Moves {
		if owner[mv.Bucket] != mv.From {
			t.Fatalf("bucket %d: move from %d but owner is %d", mv.Bucket, mv.From, owner[mv.Bucket])
		}
		owner[mv.Bucket] = mv.To
	}
	ofs.EachBucket(func(b []int) {
		if idx := ofs.Linear(b); owner[idx] != newAlloc.Device(b) {
			t.Fatalf("bucket %d: replayed owner %d, new allocator says %d", idx, owner[idx], newAlloc.Device(b))
		}
	})
}

func TestRescaledSpecValidation(t *testing.T) {
	spec := decluster.Spec{Sizes: []int{8, 4}, M: 4, Method: decluster.MethodModulo}
	for _, bad := range []int{4, 3, 16, 1} {
		if _, err := spec.Rescaled(bad); err == nil {
			t.Errorf("Rescaled(%d) from M=4 accepted", bad)
		}
	}
	for _, ok := range []int{8, 2} {
		ns, err := spec.Rescaled(ok)
		if err != nil {
			t.Errorf("Rescaled(%d) from M=4 rejected: %v", ok, err)
		} else if ns.M != ok {
			t.Errorf("Rescaled(%d).M = %d", ok, ns.M)
		}
	}
}

func TestAuditGuard(t *testing.T) {
	rep := audit.BackendReport{Shapes: []audit.ShapeReport{
		{Shape: "s**", Queries: 3, MaxDeviation: 1},
		{Shape: "ss*", Queries: 2, MaxDeviation: 0},
	}}
	guard := AuditGuard(func() audit.BackendReport { return rep }, 8, 4)
	if err := guard(); err != nil {
		t.Errorf("guard rejected a within-bound report: %v", err)
	}
	// Below the query floor.
	floor := AuditGuard(func() audit.BackendReport { return rep }, 8, 100)
	if err := floor(); err == nil || !strings.Contains(err.Error(), "audited queries") {
		t.Errorf("guard passed below the query floor: %v", err)
	}
	// Deviation beyond the Doerr bound for its free-field count.
	bad := audit.BackendReport{Shapes: []audit.ShapeReport{
		{Shape: "ss*", Queries: 10, MaxDeviation: 2}, // bound for 1 free field is 1
	}}
	over := AuditGuard(func() audit.BackendReport { return bad }, 8, 1)
	if err := over(); err == nil || !strings.Contains(err.Error(), "Doerr") {
		t.Errorf("guard passed an out-of-bound deviation: %v", err)
	}
}
