package rebalance

import (
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/field"
)

func TestPlanGrowthValidation(t *testing.T) {
	oldFS := decluster.MustFileSystem([]int{4, 4}, 8)
	newFS := decluster.MustFileSystem([]int{8, 4}, 8)
	oldA, newA := decluster.NewModulo(oldFS), decluster.NewModulo(newFS)
	if _, err := PlanGrowth(oldA, newA, 1); err == nil {
		t.Error("wrong grown field accepted")
	}
	if _, err := PlanGrowth(oldA, newA, -1); err == nil {
		t.Error("negative field accepted")
	}
	if _, err := PlanGrowth(oldA, newA, 2); err == nil {
		t.Error("out-of-range field accepted")
	}
	otherM := decluster.NewModulo(decluster.MustFileSystem([]int{8, 4}, 4))
	if _, err := PlanGrowth(oldA, otherM, 0); err == nil {
		t.Error("device count mismatch accepted")
	}
	otherN := decluster.NewModulo(decluster.MustFileSystem([]int{8, 4, 2}, 8))
	if _, err := PlanGrowth(oldA, otherN, 0); err == nil {
		t.Error("field count mismatch accepted")
	}
	if _, err := PlanGrowth(oldA, newA, 0); err != nil {
		t.Errorf("valid growth rejected: %v", err)
	}
}

func TestPlanGrowthAccounting(t *testing.T) {
	oldFS := decluster.MustFileSystem([]int{4, 8}, 8)
	newFS := decluster.MustFileSystem([]int{8, 8}, 8)
	oldA := decluster.MustFX(oldFS)
	newA := decluster.MustFX(newFS)
	plan, err := PlanGrowth(oldA, newA, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != 64 {
		t.Errorf("total = %d, want 64", plan.Total)
	}
	if plan.Stayed+plan.Moved != plan.Total {
		t.Errorf("stayed %d + moved %d != total %d", plan.Stayed, plan.Moved, plan.Total)
	}
	in, out := 0, 0
	for d := range plan.PerDeviceIn {
		in += plan.PerDeviceIn[d]
		out += plan.PerDeviceOut[d]
	}
	if in != plan.Moved || out != plan.Moved {
		t.Errorf("in %d / out %d, want both %d", in, out, plan.Moved)
	}
	if f := plan.MoveFraction(); f < 0 || f > 1 {
		t.Errorf("MoveFraction = %f", f)
	}
}

// Children with the new bit clear keep their parent's cell value, so the
// old half of the grid never moves under any allocator whose device
// function only reads the coordinates (all of ours): the low child has
// identical coordinates to its parent.
func TestLowChildrenNeverMove(t *testing.T) {
	oldFS := decluster.MustFileSystem([]int{4, 8}, 8)
	newFS := decluster.MustFileSystem([]int{8, 8}, 8)
	for _, pair := range [][2]decluster.GroupAllocator{
		{decluster.MustFX(oldFS), decluster.MustFX(newFS)},
		{decluster.NewModulo(oldFS), decluster.NewModulo(newFS)},
		{decluster.MustGDM(oldFS, []int{3, 5}), decluster.MustGDM(newFS, []int{3, 5})},
	} {
		oldA, newA := pair[0], pair[1]
		plan, err := PlanGrowth(oldA, newA, 0)
		if err != nil {
			t.Fatal(err)
		}
		// At most half of the new grid (the high children) can move —
		// unless the allocator's per-field transform changed shape. FX on
		// identity fields, Modulo and GDM all keep low children in place.
		if plan.Moved > plan.Total/2 {
			t.Errorf("%s: moved %d of %d (> half)", newA.Name(), plan.Moved, plan.Total)
		}
	}
}

// Basic FX growth on an identity field: the high child's device is the
// parent's xor'd with the new bit (after T_M) — exactly half the grid
// moves when the new bit lands inside T_M's window.
func TestBasicFXGrowthMovesHalf(t *testing.T) {
	oldFS := decluster.MustFileSystem([]int{4, 8}, 8)
	newFS := decluster.MustFileSystem([]int{8, 8}, 8)
	oldA, err := decluster.NewBasicFX(oldFS)
	if err != nil {
		t.Fatal(err)
	}
	newA, err := decluster.NewBasicFX(newFS)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanGrowth(oldA, newA, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Moved != plan.Total/2 {
		t.Errorf("moved %d, want %d", plan.Moved, plan.Total/2)
	}
}

func TestPlanMigration(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 16)
	md := decluster.NewModulo(fs)
	fx := decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U}))

	// Self-migration moves nothing.
	self, err := PlanMigration(md, md)
	if err != nil {
		t.Fatal(err)
	}
	if self.Moved != 0 || self.MoveFraction() != 0 {
		t.Errorf("self migration moved %d", self.Moved)
	}

	plan, err := PlanMigration(md, fx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != 16 {
		t.Errorf("total = %d", plan.Total)
	}
	if plan.Moved == 0 {
		t.Error("Modulo -> FX moved nothing on a system where they differ")
	}
	in, out := 0, 0
	for d := range plan.PerDeviceIn {
		in += plan.PerDeviceIn[d]
		out += plan.PerDeviceOut[d]
	}
	if in != plan.Moved || out != plan.Moved {
		t.Errorf("in/out accounting wrong: %d/%d vs %d", in, out, plan.Moved)
	}

	// Mismatched systems are rejected.
	other := decluster.NewModulo(decluster.MustFileSystem([]int{4, 4}, 8))
	if _, err := PlanMigration(md, other); err == nil {
		t.Error("different M accepted")
	}
	otherSizes := decluster.NewModulo(decluster.MustFileSystem([]int{4, 8}, 16))
	if _, err := PlanMigration(md, otherSizes); err == nil {
		t.Error("different sizes accepted")
	}
}

func TestGrowthSeries(t *testing.T) {
	buildFX := func(fs decluster.FileSystem) (decluster.GroupAllocator, error) {
		return decluster.NewFX(fs)
	}
	plans, err := GrowthSeries([]int{2, 8}, 8, 0, 3, buildFX)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("plans = %d", len(plans))
	}
	// Grid doubles each step: totals 32, 64, 128.
	for i, want := range []int{32, 64, 128} {
		if plans[i].Total != want {
			t.Errorf("step %d total = %d, want %d", i, plans[i].Total, want)
		}
	}
	if _, err := GrowthSeries([]int{3}, 8, 0, 1, buildFX); err == nil {
		t.Error("invalid sizes accepted")
	}
	if _, err := GrowthSeries([]int{4}, 8, 0, 1,
		func(fs decluster.FileSystem) (decluster.GroupAllocator, error) {
			return decluster.NewGDM(fs, []int{1, 2}) // wrong arity -> error
		}); err == nil {
		t.Error("builder error not propagated")
	}
}

// Growth disruption differs sharply by method — a trade-off the paper
// does not discuss. Modulo's contributions are unchanged by a directory
// doubling, so only high children can move (fraction <= 1/2). Extended
// FX re-plans its transforms when a field size changes (U's multiplier
// d1 = M/F halves), relocating transformed contributions of *specified*
// coordinates too, so its move fraction can exceed 1/2.
func TestGrowthDisruptionByMethod(t *testing.T) {
	mdPlans, err := GrowthSeries([]int{2, 4, 8}, 16, 0, 4,
		func(fs decluster.FileSystem) (decluster.GroupAllocator, error) {
			return decluster.NewModulo(fs), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range mdPlans {
		if p.MoveFraction() > 0.5 {
			t.Errorf("Modulo step %d: move fraction %.2f > 0.5", i, p.MoveFraction())
		}
	}
	fxPlans, err := GrowthSeries([]int{2, 4, 8}, 16, 0, 4,
		func(fs decluster.FileSystem) (decluster.GroupAllocator, error) {
			return decluster.NewFX(fs)
		})
	if err != nil {
		t.Fatal(err)
	}
	exceeded := false
	for _, p := range fxPlans {
		if p.MoveFraction() > 0.5 {
			exceeded = true
		}
		if p.MoveFraction() > 1 {
			t.Errorf("move fraction %.2f impossible", p.MoveFraction())
		}
	}
	if !exceeded {
		t.Log("note: extended FX stayed under 1/2 move fraction on this series")
	}
	// Keeping transforms FIXED across growth (Basic FX) restores the
	// <= 1/2 bound: only the revealed bit can change a device.
	basicPlans, err := GrowthSeries([]int{2, 4, 8}, 16, 0, 4,
		func(fs decluster.FileSystem) (decluster.GroupAllocator, error) {
			return decluster.NewBasicFX(fs)
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range basicPlans {
		if p.MoveFraction() > 0.5 {
			t.Errorf("Basic FX step %d: move fraction %.2f > 0.5", i, p.MoveFraction())
		}
	}
	_ = field.I // anchor: transform kinds referenced by the FX planner
}
