package rebalance

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
	"fxdist/internal/persist"
	"fxdist/internal/telemetry"
)

// Transport is the migration-stream surface the rescale driver speaks —
// one control round trip per call against one device server.
// netdist.Coordinator satisfies it; the transport handed to a driver
// must span the union of old and new device sets (for a grow that is
// the new, larger coordinator; for a shrink the old one).
type Transport interface {
	Prepare(ctx context.Context, dev int, spec decluster.Spec) error
	FetchBucket(ctx context.Context, dev, bucket int) ([]mkhash.Record, error)
	InstallBucket(ctx context.Context, dev, bucket int, recs []mkhash.Record) error
	CutoverDevice(ctx context.Context, dev int) error
	AbortRescale(ctx context.Context, dev int) error
}

// DriverConfig configures one live rescale run.
type DriverConfig struct {
	// OldSpec and NewSpec are the pre- and post-rescale allocator specs;
	// NewSpec.M must be exactly double or half OldSpec.M.
	OldSpec, NewSpec decluster.Spec
	// Transport reaches every device in the union of the two epochs.
	Transport Transport
	// JournalPath, when set, persists migration progress after every
	// FlushEvery buckets, so a killed coordinator resumes where it
	// stopped instead of re-streaming the whole move set.
	JournalPath string
	// Concurrency bounds in-flight bucket copies (default 4). Each copy
	// is one fetch plus one install, so the bound also backpressures the
	// per-device streams.
	Concurrency int
	// Retries is the attempt count per control op (default 5); attempts
	// back off exponentially from RetryBackoff (default 10ms). Rescales
	// run under the same fault injector as queries, so transient device
	// failures during migration are expected, not fatal.
	Retries      int
	RetryBackoff time.Duration
	// FlushEvery is the journal flush cadence in completed buckets
	// (default 64).
	FlushEvery int
	// Guard gates cutover: polled during the dual-read phase until it
	// returns nil. AuditGuard wires the optimality auditor in here — the
	// old epoch is never released while the new layout's per-shape
	// deviation exceeds the Doerr bound. Nil means cut over immediately.
	Guard func() error
	// GuardPoll is the Guard polling interval (default 50ms).
	GuardPoll time.Duration
	// EnterDualRead is called once every bucket is copied, before the
	// guard runs. The serving tier starts answering from both epochs
	// here (engine.DualReader).
	EnterDualRead func(ctx context.Context) error
	// BeforeRelease is called after the guard passes and before cutover
	// is broadcast — the last chance to drain in-flight old-epoch reads
	// and veto on cross-check mismatches. Returning an error aborts.
	BeforeRelease func(ctx context.Context) error
	// BeforeRollback is called when a failed or aborted run is about to
	// roll the servers back. The serving tier must stop routing queries
	// at the new epoch here (its prepared views are about to drop).
	BeforeRollback func()
}

// Driver phases, beyond the journalled persist.Rescale* ones.
const (
	PhasePlanning = "planning"
	PhaseFailed   = "failed"
)

// DriverStatus is a point-in-time snapshot of a rescale run.
type DriverStatus struct {
	Phase        string  `json:"phase"`
	OldM         int     `json:"old_m"`
	NewM         int     `json:"new_m"`
	TotalMoves   int     `json:"total_moves"`
	Copied       int     `json:"copied"`
	MoveFraction float64 `json:"move_fraction"`
	Paused       bool    `json:"paused"`
	Err          string  `json:"err,omitempty"`
	LastGuardErr string  `json:"last_guard_err,omitempty"`
}

// Driver executes one live rescale: prepare every surviving server with
// the new epoch's spec, stream the moving buckets old-owner → new-owner
// with bounded concurrency, switch the serving tier to dual reads, hold
// until the optimality guard admits the new layout, then cut over. The
// old partition stays authoritative (and untouched) until cutover, so
// Abort at any earlier point is a complete rollback.
type Driver struct {
	cfg  DriverConfig
	plan RescalePlan

	mu        sync.Mutex
	phase     string
	copied    int
	paused    bool
	resumeCh  chan struct{} // closed to wake pause waiters; nil when running
	runErr    error
	guardErr  error
	doneCount map[int]struct{} // bucket -> copied this or a prior run

	cancelMu sync.Mutex
	cancel   context.CancelFunc
}

// NewDriver plans the rescale and, when JournalPath holds a compatible
// journal from a killed run, adopts its progress. The returned driver
// has not contacted any server yet; call Run.
func NewDriver(cfg DriverConfig) (*Driver, error) {
	if cfg.Transport == nil {
		return nil, errors.New("rebalance: driver needs a transport")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 5
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 10 * time.Millisecond
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 64
	}
	if cfg.GuardPoll <= 0 {
		cfg.GuardPoll = 50 * time.Millisecond
	}
	oldAlloc, err := cfg.OldSpec.Build()
	if err != nil {
		return nil, fmt.Errorf("rebalance: old spec: %w", err)
	}
	newAlloc, err := cfg.NewSpec.Build()
	if err != nil {
		return nil, fmt.Errorf("rebalance: new spec: %w", err)
	}
	plan, err := PlanRescale(oldAlloc, newAlloc)
	if err != nil {
		return nil, err
	}
	d := &Driver{
		cfg:       cfg,
		plan:      plan,
		phase:     PhasePlanning,
		doneCount: make(map[int]struct{}),
	}
	if cfg.JournalPath != "" {
		if st, err := persist.LoadRescale(cfg.JournalPath); err == nil {
			if err := d.adoptJournal(st); err != nil {
				return nil, err
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	return d, nil
}

// adoptJournal resumes from a prior run's journal: same specs, not yet
// finished. Buckets recorded done are skipped (install is idempotent,
// so the at-least-once boundary around a crash is harmless).
func (d *Driver) adoptJournal(st *persist.RescaleState) error {
	if st.Phase == persist.RescaleDone || st.Phase == persist.RescaleAborted {
		return fmt.Errorf("rebalance: journal %s records a finished rescale (%s); remove it to start a new one", d.cfg.JournalPath, st.Phase)
	}
	if !specsMatch(st.OldSpec, d.cfg.OldSpec) || !specsMatch(st.NewSpec, d.cfg.NewSpec) {
		return fmt.Errorf("rebalance: journal %s belongs to a different rescale", d.cfg.JournalPath)
	}
	for _, b := range st.Done {
		d.doneCount[b] = struct{}{}
	}
	d.copied = len(d.doneCount)
	telemetry.LogRescale(telemetry.RescaleEvent{
		Phase: st.Phase, Msg: "resumed from journal",
		Copied: d.copied, Total: len(d.plan.Moves),
	})
	return nil
}

func specsMatch(a, b decluster.Spec) bool {
	if a.Method != b.Method || a.M != b.M || len(a.Sizes) != len(b.Sizes) {
		return false
	}
	for i := range a.Sizes {
		if a.Sizes[i] != b.Sizes[i] {
			return false
		}
	}
	return true
}

// Plan returns the rescale's move plan.
func (d *Driver) Plan() RescalePlan { return d.plan }

// Status snapshots the run.
func (d *Driver) Status() DriverStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DriverStatus{
		Phase:        d.phase,
		OldM:         d.plan.OldM,
		NewM:         d.plan.NewM,
		TotalMoves:   len(d.plan.Moves),
		Copied:       d.copied,
		MoveFraction: d.plan.MoveFraction(),
		Paused:       d.paused,
	}
	if d.runErr != nil {
		st.Err = d.runErr.Error()
	}
	if d.guardErr != nil {
		st.LastGuardErr = d.guardErr.Error()
	}
	return st
}

// Pause stops issuing new bucket copies (in-flight ones finish) and
// holds the guard loop. Safe in any phase.
func (d *Driver) Pause() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.paused {
		d.paused = true
		d.resumeCh = make(chan struct{})
		telemetry.LogRescale(telemetry.RescaleEvent{Phase: d.phase, Msg: "paused", Copied: d.copied, Total: len(d.plan.Moves)})
	}
}

// Resume lifts a Pause.
func (d *Driver) Resume() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.paused {
		d.paused = false
		close(d.resumeCh)
		d.resumeCh = nil
		telemetry.LogRescale(telemetry.RescaleEvent{Phase: d.phase, Msg: "resumed", Copied: d.copied, Total: len(d.plan.Moves)})
	}
}

// Abort cancels the run. Run then rolls the servers back (every
// installed bucket deleted, prepared views dropped) and returns
// ErrAborted.
func (d *Driver) Abort() {
	d.cancelMu.Lock()
	cancel := d.cancel
	d.cancelMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// ErrAborted is returned by Run when the rescale was aborted (by Abort
// or context cancellation) and rolled back.
var ErrAborted = errors.New("rebalance: rescale aborted")

// ErrPartialCutover is wrapped by Run when some devices cut over and
// others stayed unreachable through the retry budget. The migration is
// NOT rolled back — cutover is one-way once any device promotes — and
// the journal stays at dual-read; re-running the driver replays the
// idempotent cutover broadcast until the stragglers converge.
var ErrPartialCutover = errors.New("rebalance: cutover incomplete on some devices")

// waitIfPaused blocks while the driver is paused.
func (d *Driver) waitIfPaused(ctx context.Context) error {
	for {
		d.mu.Lock()
		ch := d.resumeCh
		d.mu.Unlock()
		if ch == nil {
			return ctx.Err()
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (d *Driver) setPhase(phase, msg string) {
	d.mu.Lock()
	d.phase = phase
	copied := d.copied
	d.mu.Unlock()
	telemetry.LogRescale(telemetry.RescaleEvent{Phase: phase, Msg: msg, Copied: copied, Total: len(d.plan.Moves)})
}

// retry runs op with the configured attempt budget and backoff.
func (d *Driver) retry(ctx context.Context, op func() error) error {
	backoff := d.cfg.RetryBackoff
	var err error
	for attempt := 0; attempt < d.cfg.Retries; attempt++ {
		if err = ctx.Err(); err != nil {
			return err
		}
		if err = op(); err == nil {
			return nil
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		backoff *= 2
	}
	return err
}

// Run executes the rescale to completion. It is not restartable on the
// same Driver; after a crash, build a new Driver with the same
// JournalPath to resume. On abort or failure the servers are rolled
// back before Run returns.
func (d *Driver) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	d.cancelMu.Lock()
	d.cancel = cancel
	d.cancelMu.Unlock()
	defer cancel()

	err := d.run(ctx)
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrPartialCutover) {
		// Past the point of no return: some servers promoted. No
		// rollback — the journal keeps the dual-read phase so a rebuilt
		// driver replays the idempotent cutover broadcast.
		d.mu.Lock()
		d.phase = PhaseFailed
		d.runErr = err
		d.mu.Unlock()
		telemetry.LogRescale(telemetry.RescaleEvent{Phase: PhaseFailed, Msg: err.Error(), Copied: d.copied, Total: len(d.plan.Moves)})
		return err
	}
	// Roll back with a fresh context: the run context is likely the
	// cancellation that got us here.
	if d.cfg.BeforeRollback != nil {
		d.cfg.BeforeRollback()
	}
	d.rollback(context.Background())
	d.mu.Lock()
	d.phase = PhaseFailed
	if errors.Is(err, context.Canceled) {
		err = ErrAborted
		d.phase = persist.RescaleAborted
	}
	d.runErr = err
	d.mu.Unlock()
	d.journal(persist.RescaleAborted)
	telemetry.LogRescale(telemetry.RescaleEvent{Phase: d.phase, Msg: err.Error(), Copied: d.copied, Total: len(d.plan.Moves)})
	return err
}

func (d *Driver) run(ctx context.Context) error {
	survivors := d.plan.OldM
	if d.plan.NewM < survivors {
		survivors = d.plan.NewM
	}
	union := d.plan.OldM
	if d.plan.NewM > union {
		union = d.plan.NewM
	}

	// Prepare: every surviving server learns the next epoch's spec and
	// starts answering at both epochs. Idempotent, so a resumed run
	// re-prepares harmlessly.
	d.setPhase(persist.RescaleCopying, "preparing servers")
	for dev := 0; dev < survivors; dev++ {
		dev := dev
		if err := d.retry(ctx, func() error { return d.cfg.Transport.Prepare(ctx, dev, d.cfg.NewSpec) }); err != nil {
			return fmt.Errorf("rebalance: prepare device %d: %w", dev, err)
		}
	}
	d.journal(persist.RescaleCopying)

	// Copy: stream every moving bucket from its old owner to its new
	// one, Concurrency at a time. The fetch-install pair is the unit of
	// retry and of journalling.
	if err := d.copyBuckets(ctx); err != nil {
		return err
	}
	d.journal(persist.RescaleCopying)

	// Dual-read: the serving tier answers from both epochs while the
	// guard watches the new layout's optimality.
	d.setPhase(persist.RescaleDualRead, "all buckets copied; dual reads on")
	d.journal(persist.RescaleDualRead)
	if d.cfg.EnterDualRead != nil {
		if err := d.cfg.EnterDualRead(ctx); err != nil {
			return fmt.Errorf("rebalance: enter dual-read: %w", err)
		}
	}
	if err := d.holdForGuard(ctx); err != nil {
		return err
	}
	if d.cfg.BeforeRelease != nil {
		if err := d.cfg.BeforeRelease(ctx); err != nil {
			return fmt.Errorf("rebalance: release vetoed: %w", err)
		}
	}

	// Cutover: broadcast to the union. Retiring servers and fresh
	// targets answer success without state, so replay after a crash
	// converges. The broadcast runs under a background context (an
	// abort arriving now must not strand half the fleet) and visits
	// every device even after a failure, maximizing convergence.
	d.setPhase(persist.RescaleDualRead, "guard passed; cutting over")
	cctx := context.Background()
	var cutFailed []int
	var lastErr error
	for dev := 0; dev < union; dev++ {
		dev := dev
		if err := d.retry(cctx, func() error { return d.cfg.Transport.CutoverDevice(cctx, dev) }); err != nil {
			cutFailed = append(cutFailed, dev)
			lastErr = err
		}
	}
	if len(cutFailed) > 0 {
		return fmt.Errorf("%w: devices %v (last error: %v)", ErrPartialCutover, cutFailed, lastErr)
	}
	d.setPhase(persist.RescaleDone, "cutover complete")
	d.journal(persist.RescaleDone)
	return nil
}

// copyBuckets drains the move set with bounded concurrency.
func (d *Driver) copyBuckets(ctx context.Context) error {
	sem := make(chan struct{}, d.cfg.Concurrency)
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	sinceFlush := 0
	for _, mv := range d.plan.Moves {
		d.mu.Lock()
		_, done := d.doneCount[mv.Bucket]
		d.mu.Unlock()
		if done {
			continue
		}
		if err := d.waitIfPaused(ctx); err != nil {
			break
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		if len(errCh) > 0 {
			<-sem
			break
		}
		wg.Add(1)
		go func(mv Move) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := d.copyOne(ctx, mv); err != nil {
				fail(err)
				return
			}
			d.mu.Lock()
			d.doneCount[mv.Bucket] = struct{}{}
			d.copied = len(d.doneCount)
			copied := d.copied
			d.mu.Unlock()
			telemetry.LogRescale(telemetry.RescaleEvent{
				Phase: persist.RescaleCopying, Msg: "bucket copied",
				Bucket: mv.Bucket, From: mv.From, To: mv.To,
				Copied: copied, Total: len(d.plan.Moves),
			})
		}(mv)
		sinceFlush++
		if sinceFlush >= d.cfg.FlushEvery {
			sinceFlush = 0
			wg.Wait() // journal a consistent prefix
			d.journal(persist.RescaleCopying)
		}
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	return ctx.Err()
}

// copyOne moves one bucket: fetch from the old owner, install on the
// new one. Each leg retries independently.
func (d *Driver) copyOne(ctx context.Context, mv Move) error {
	var recs []mkhash.Record
	err := d.retry(ctx, func() error {
		var ferr error
		recs, ferr = d.cfg.Transport.FetchBucket(ctx, mv.From, mv.Bucket)
		return ferr
	})
	if err != nil {
		return fmt.Errorf("rebalance: fetch bucket %d from device %d: %w", mv.Bucket, mv.From, err)
	}
	err = d.retry(ctx, func() error { return d.cfg.Transport.InstallBucket(ctx, mv.To, mv.Bucket, recs) })
	if err != nil {
		return fmt.Errorf("rebalance: install bucket %d on device %d: %w", mv.Bucket, mv.To, err)
	}
	return nil
}

// holdForGuard polls the cutover guard until it admits the new layout.
func (d *Driver) holdForGuard(ctx context.Context) error {
	if d.cfg.Guard == nil {
		return nil
	}
	tick := time.NewTicker(d.cfg.GuardPoll)
	defer tick.Stop()
	for {
		if err := d.waitIfPaused(ctx); err != nil {
			return err
		}
		gerr := d.cfg.Guard()
		d.mu.Lock()
		d.guardErr = gerr
		d.mu.Unlock()
		if gerr == nil {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// rollback broadcasts Abort to every device, best-effort.
func (d *Driver) rollback(ctx context.Context) {
	union := d.plan.OldM
	if d.plan.NewM > union {
		union = d.plan.NewM
	}
	for dev := 0; dev < union; dev++ {
		dev := dev
		_ = d.retry(ctx, func() error { return d.cfg.Transport.AbortRescale(ctx, dev) })
	}
}

// journal persists progress. Best-effort: a failed flush costs a
// resumed run some re-copies (installs are idempotent), never
// correctness.
func (d *Driver) journal(phase string) {
	if d.cfg.JournalPath == "" {
		return
	}
	d.mu.Lock()
	done := make([]int, 0, len(d.doneCount))
	for b := range d.doneCount {
		done = append(done, b)
	}
	d.mu.Unlock()
	sort.Ints(done)
	st := &persist.RescaleState{
		OldSpec: d.cfg.OldSpec,
		NewSpec: d.cfg.NewSpec,
		Phase:   phase,
		Done:    done,
	}
	_ = persist.SaveRescale(d.cfg.JournalPath, st)
}
