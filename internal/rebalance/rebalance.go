// Package rebalance plans the data movement caused by dynamic file
// growth. When a multi-key hashed file doubles one field's directory
// (extendible-hashing style: one more hash bit revealed), every old
// bucket splits into two children — the child with the new bit clear
// keeps the parent's cell, the other takes cell v + F_old. A declustering
// allocator maps the children independently, so roughly half of each
// bucket's records may land on a different device and must move across
// the interconnect.
//
// The paper leaves growth to its dynamic-hashing citations; this package
// quantifies what each allocation method costs under it, which matters
// when choosing a method for a file that grows in place.
package rebalance

import (
	"fmt"

	"fxdist/internal/decluster"
)

// GrowthPlan reports the device movement caused by doubling one field.
type GrowthPlan struct {
	// Field is the grown field's index.
	Field int
	// Total is the number of buckets in the new (doubled) grid.
	Total int
	// Stayed counts new buckets placed on the same device as their parent
	// bucket; Moved counts the rest. Stayed + Moved == Total.
	Stayed, Moved int
	// PerDeviceIn[d] counts new buckets moving onto device d from
	// elsewhere; PerDeviceOut[d] counts children leaving the device of
	// their parent d.
	PerDeviceIn, PerDeviceOut []int
}

// MoveFraction returns Moved / Total.
func (p GrowthPlan) MoveFraction() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Moved) / float64(p.Total)
}

// PlanGrowth compares bucket placement before and after doubling field g.
// oldAlloc must be built for the pre-growth sizes and newAlloc for the
// post-growth sizes (identical except field g doubled); both must share M.
func PlanGrowth(oldAlloc, newAlloc decluster.GroupAllocator, g int) (GrowthPlan, error) {
	oldFS, newFS := oldAlloc.FileSystem(), newAlloc.FileSystem()
	if oldFS.NumFields() != newFS.NumFields() {
		return GrowthPlan{}, fmt.Errorf("rebalance: field counts differ (%d vs %d)", oldFS.NumFields(), newFS.NumFields())
	}
	if g < 0 || g >= oldFS.NumFields() {
		return GrowthPlan{}, fmt.Errorf("rebalance: grown field %d out of range", g)
	}
	if oldFS.M != newFS.M {
		return GrowthPlan{}, fmt.Errorf("rebalance: device counts differ (%d vs %d)", oldFS.M, newFS.M)
	}
	for i := range oldFS.Sizes {
		want := oldFS.Sizes[i]
		if i == g {
			want *= 2
		}
		if newFS.Sizes[i] != want {
			return GrowthPlan{}, fmt.Errorf("rebalance: field %d sized %d after growth, want %d", i, newFS.Sizes[i], want)
		}
	}

	plan := GrowthPlan{
		Field:        g,
		Total:        newFS.NumBuckets(),
		PerDeviceIn:  make([]int, newFS.M),
		PerDeviceOut: make([]int, newFS.M),
	}
	parent := make([]int, newFS.NumFields())
	newFS.EachBucket(func(b []int) {
		copy(parent, b)
		parent[g] = b[g] % oldFS.Sizes[g] // drop the revealed bit
		from := oldAlloc.Device(parent)
		to := newAlloc.Device(b)
		if from == to {
			plan.Stayed++
		} else {
			plan.Moved++
			plan.PerDeviceOut[from]++
			plan.PerDeviceIn[to]++
		}
	})
	return plan, nil
}

// MigrationPlan reports the bucket movement of switching allocation
// methods on the same file system — e.g. re-declustering a Modulo file to
// FX after a workload shift, or adopting a better transform assignment
// found by plan search.
type MigrationPlan struct {
	Total, Moved int
	PerDeviceIn  []int
	PerDeviceOut []int
}

// MoveFraction returns Moved / Total.
func (p MigrationPlan) MoveFraction() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Moved) / float64(p.Total)
}

// PlanMigration compares bucket placement under two allocators over the
// same file system.
func PlanMigration(from, to decluster.Allocator) (MigrationPlan, error) {
	ffs, tfs := from.FileSystem(), to.FileSystem()
	if ffs.NumFields() != tfs.NumFields() || ffs.M != tfs.M {
		return MigrationPlan{}, fmt.Errorf("rebalance: allocators cover different systems")
	}
	for i := range ffs.Sizes {
		if ffs.Sizes[i] != tfs.Sizes[i] {
			return MigrationPlan{}, fmt.Errorf("rebalance: field %d sized %d vs %d", i, ffs.Sizes[i], tfs.Sizes[i])
		}
	}
	plan := MigrationPlan{
		Total:        ffs.NumBuckets(),
		PerDeviceIn:  make([]int, ffs.M),
		PerDeviceOut: make([]int, ffs.M),
	}
	ffs.EachBucket(func(b []int) {
		src, dst := from.Device(b), to.Device(b)
		if src != dst {
			plan.Moved++
			plan.PerDeviceOut[src]++
			plan.PerDeviceIn[dst]++
		}
	})
	return plan, nil
}

// GrowthSeries doubles field g repeatedly (steps times), rebuilding the
// allocator with build for each size vector, and returns the per-step
// plans. build receives the post-growth file system.
func GrowthSeries(sizes []int, m, g, steps int,
	build func(fs decluster.FileSystem) (decluster.GroupAllocator, error)) ([]GrowthPlan, error) {

	cur := append([]int(nil), sizes...)
	curFS, err := decluster.NewFileSystem(cur, m)
	if err != nil {
		return nil, err
	}
	curAlloc, err := build(curFS)
	if err != nil {
		return nil, err
	}
	plans := make([]GrowthPlan, 0, steps)
	for s := 0; s < steps; s++ {
		next := append([]int(nil), cur...)
		next[g] *= 2
		nextFS, err := decluster.NewFileSystem(next, m)
		if err != nil {
			return nil, err
		}
		nextAlloc, err := build(nextFS)
		if err != nil {
			return nil, err
		}
		plan, err := PlanGrowth(curAlloc, nextAlloc, g)
		if err != nil {
			return nil, err
		}
		plans = append(plans, plan)
		cur, curAlloc = next, nextAlloc
	}
	return plans, nil
}
