package rebalance

import (
	"fmt"
	"strings"

	"fxdist/internal/audit"
	"fxdist/internal/decluster"
)

// Move is one bucket changing owner in a rescale: the bucket's linear
// index (stable across the rescale — only M changes, never the grid)
// and its old and new devices.
type Move struct {
	Bucket   int
	From, To int
}

// RescalePlan is the full data-movement plan for an elastic rescale
// M→2M (grow) or 2M→M (shrink) over an unchanged bucket grid.
type RescalePlan struct {
	// OldM and NewM are the device counts before and after.
	OldM, NewM int
	// Grow is true for M→2M, false for 2M→M.
	Grow bool
	// Total is the number of buckets in the grid.
	Total int
	// Moves lists every bucket whose owner changes, in linear-index
	// order; Stay counts the rest (Stay + len(Moves) == Total).
	Moves []Move
	Stay  int
	// PerDeviceIn[d] / PerDeviceOut[d] count buckets arriving at and
	// leaving device d; both are sized max(OldM, NewM).
	PerDeviceIn, PerDeviceOut []int
	// Derivable reports whether the T_M low-bit identity held for every
	// move: on a grow each bucket's new owner is its old one or old+M,
	// on a shrink it is old mod NewM. See VerifyDerivation for the
	// per-field congruence this follows from.
	Derivable bool
}

// MoveFraction returns len(Moves) / Total.
func (p RescalePlan) MoveFraction() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(len(p.Moves)) / float64(p.Total)
}

// PlanRescale compares bucket placement under the old and new
// allocators of an elastic rescale. Both must cover the same field
// sizes; the device counts must differ by exactly a factor of two in
// either direction. The plan is exact — it enumerates the grid — so it
// is correct even for allocator pairs where the low-bit derivation
// identity does not hold (Derivable reports which case applies).
func PlanRescale(oldAlloc, newAlloc decluster.GroupAllocator) (RescalePlan, error) {
	ofs, nfs := oldAlloc.FileSystem(), newAlloc.FileSystem()
	if ofs.NumFields() != nfs.NumFields() {
		return RescalePlan{}, fmt.Errorf("rebalance: field counts differ (%d vs %d)", ofs.NumFields(), nfs.NumFields())
	}
	for i := range ofs.Sizes {
		if ofs.Sizes[i] != nfs.Sizes[i] {
			return RescalePlan{}, fmt.Errorf("rebalance: rescale cannot change field sizes (field %d: %d vs %d)", i, ofs.Sizes[i], nfs.Sizes[i])
		}
	}
	grow := nfs.M == 2*ofs.M
	if !grow && ofs.M != 2*nfs.M {
		return RescalePlan{}, fmt.Errorf("rebalance: rescale %d→%d devices: only doubling or halving is supported", ofs.M, nfs.M)
	}
	maxM := ofs.M
	if nfs.M > maxM {
		maxM = nfs.M
	}
	plan := RescalePlan{
		OldM: ofs.M, NewM: nfs.M, Grow: grow,
		Total:        ofs.NumBuckets(),
		PerDeviceIn:  make([]int, maxM),
		PerDeviceOut: make([]int, maxM),
		Derivable:    true,
	}
	ofs.EachBucket(func(b []int) {
		from, to := oldAlloc.Device(b), newAlloc.Device(b)
		if from == to {
			plan.Stay++
			return
		}
		plan.Moves = append(plan.Moves, Move{Bucket: ofs.Linear(b), From: from, To: to})
		plan.PerDeviceOut[from]++
		plan.PerDeviceIn[to]++
		if grow {
			if to != from+ofs.M {
				plan.Derivable = false
			}
		} else if to != from%nfs.M {
			plan.Derivable = false
		}
	})
	return plan, nil
}

// VerifyDerivation proves (or refutes) the T_M low-bit identity for an
// allocator pair algebraically, in O(sum of field sizes) instead of
// O(grid): if every per-field contribution of the larger-M allocator is
// congruent mod the smaller M to the smaller-M allocator's, then —
// because both xor and addition mod a power of two commute with taking
// low bits — every bucket's devices under the two allocators are
// congruent mod the smaller M. On a grow that pins the new owner to
// {old, old+M}; on a shrink it pins it to old mod NewM. A nil return
// means the identity holds for every bucket.
func VerifyDerivation(oldAlloc, newAlloc decluster.GroupAllocator) error {
	ofs, nfs := oldAlloc.FileSystem(), newAlloc.FileSystem()
	if ofs.NumFields() != nfs.NumFields() {
		return fmt.Errorf("rebalance: field counts differ (%d vs %d)", ofs.NumFields(), nfs.NumFields())
	}
	if oldAlloc.Op() != newAlloc.Op() {
		return fmt.Errorf("rebalance: fold groups differ (%s vs %s)", oldAlloc.Op(), newAlloc.Op())
	}
	small, large := oldAlloc, newAlloc
	if ofs.M > nfs.M {
		small, large = newAlloc, oldAlloc
	}
	m := small.FileSystem().M
	if large.FileSystem().M != 2*m {
		return fmt.Errorf("rebalance: device counts %d and %d do not differ by a factor of two", ofs.M, nfs.M)
	}
	for i, size := range ofs.Sizes {
		if nfs.Sizes[i] != size {
			return fmt.Errorf("rebalance: field %d sized %d vs %d", i, size, nfs.Sizes[i])
		}
		for v := 0; v < size; v++ {
			if large.Contribution(i, v)&(m-1) != small.Contribution(i, v)&(m-1) {
				return fmt.Errorf("rebalance: field %d value %d: contribution %d (M=%d) is not congruent to %d (M=%d) mod %d — owners are not low-bit derivable",
					i, v, large.Contribution(i, v), 2*m, small.Contribution(i, v), m, m)
			}
		}
	}
	return nil
}

// AuditGuard builds the cutover guard the migration driver evaluates
// before releasing the old owners: every audited query shape of the
// new-epoch backend must show a max per-device deviation within the
// Doerr–Hebbinghaus–Werth allowance for the new M, and at least
// minQueries retrievals must have been audited at all (a guard that has
// seen no traffic proves nothing). report is typically
// audit.For("<backend>-next").Report.
func AuditGuard(report func() audit.BackendReport, newM int, minQueries uint64) func() error {
	return func() error {
		rep := report()
		var total uint64
		for _, s := range rep.Shapes {
			total += s.Queries
			bound := decluster.DoerrBound(newM, strings.Count(s.Shape, "*"))
			if s.MaxDeviation > bound {
				return fmt.Errorf("rebalance: shape %s max deviation %d exceeds the Doerr bound %d for M=%d",
					s.Shape, s.MaxDeviation, bound, newM)
			}
		}
		if total < minQueries {
			return fmt.Errorf("rebalance: only %d audited queries on the new epoch, need %d before cutover", total, minQueries)
		}
		return nil
	}
}
