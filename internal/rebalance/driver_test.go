package rebalance

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fxdist/internal/decluster"
	"fxdist/internal/mkhash"
	"fxdist/internal/persist"
)

// fakeTransport simulates a fleet of device servers in memory: per-device
// current partitions, prepared flags, installed next-epoch buckets, and
// cutover/abort broadcasts. An optional fault hook fails operations.
type fakeTransport struct {
	mu        sync.Mutex
	buckets   map[int]map[int][]mkhash.Record // dev -> bucket -> records
	prepared  map[int]bool
	installed map[int]map[int][]mkhash.Record
	cut       map[int]bool
	aborted   map[int]bool
	fetches   map[int]int // bucket -> times fetched
	fault     func(op string, dev int) error
}

func newFakeTransport(parts []map[int][]mkhash.Record) *fakeTransport {
	ft := &fakeTransport{
		buckets:   make(map[int]map[int][]mkhash.Record),
		prepared:  make(map[int]bool),
		installed: make(map[int]map[int][]mkhash.Record),
		cut:       make(map[int]bool),
		aborted:   make(map[int]bool),
		fetches:   make(map[int]int),
	}
	for dev, part := range parts {
		ft.buckets[dev] = part
	}
	return ft
}

func (ft *fakeTransport) fail(op string, dev int) error {
	if ft.fault == nil {
		return nil
	}
	return ft.fault(op, dev)
}

func (ft *fakeTransport) Prepare(_ context.Context, dev int, _ decluster.Spec) error {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if err := ft.fail("prepare", dev); err != nil {
		return err
	}
	ft.prepared[dev] = true
	return nil
}

func (ft *fakeTransport) FetchBucket(_ context.Context, dev, bucket int) ([]mkhash.Record, error) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if err := ft.fail("fetch", dev); err != nil {
		return nil, err
	}
	ft.fetches[bucket]++
	return ft.buckets[dev][bucket], nil
}

func (ft *fakeTransport) InstallBucket(_ context.Context, dev, bucket int, recs []mkhash.Record) error {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if err := ft.fail("install", dev); err != nil {
		return err
	}
	if ft.installed[dev] == nil {
		ft.installed[dev] = make(map[int][]mkhash.Record)
	}
	ft.installed[dev][bucket] = recs
	return nil
}

func (ft *fakeTransport) CutoverDevice(_ context.Context, dev int) error {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if err := ft.fail("cutover", dev); err != nil {
		return err
	}
	ft.cut[dev] = true
	return nil
}

func (ft *fakeTransport) AbortRescale(_ context.Context, dev int) error {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.aborted[dev] = true
	return nil
}

// growFixture builds a Modulo 2→4 rescale over a 4x4 grid with one
// record per bucket, partitioned under the old allocator.
func growFixture(t *testing.T) (oldSpec, newSpec decluster.Spec, parts []map[int][]mkhash.Record, plan RescalePlan) {
	t.Helper()
	oldSpec = decluster.Spec{Sizes: []int{4, 4}, M: 2, Method: decluster.MethodModulo}
	var err error
	newSpec, err = oldSpec.Rescaled(4)
	if err != nil {
		t.Fatal(err)
	}
	oldAlloc, err := oldSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	newAlloc, err := newSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, err = PlanRescale(oldAlloc, newAlloc)
	if err != nil {
		t.Fatal(err)
	}
	fs := oldAlloc.FileSystem()
	parts = make([]map[int][]mkhash.Record, 4) // sized for the union
	for i := range parts {
		parts[i] = make(map[int][]mkhash.Record)
	}
	fs.EachBucket(func(b []int) {
		dev := oldAlloc.Device(b)
		idx := fs.Linear(b)
		parts[dev][idx] = []mkhash.Record{{fmt.Sprintf("r-%d", idx)}}
	})
	return oldSpec, newSpec, parts, plan
}

func TestDriverGrowHappyPath(t *testing.T) {
	oldSpec, newSpec, parts, plan := growFixture(t)
	ft := newFakeTransport(parts)
	journal := filepath.Join(t.TempDir(), "rescale.journal")
	var dualEntered bool
	d, err := NewDriver(DriverConfig{
		OldSpec: oldSpec, NewSpec: newSpec, Transport: ft,
		JournalPath:   journal,
		EnterDualRead: func(context.Context) error { dualEntered = true; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !dualEntered {
		t.Error("EnterDualRead never called")
	}
	if got := d.Status(); got.Phase != persist.RescaleDone || got.Copied != len(plan.Moves) {
		t.Errorf("status %+v, want done with %d copied", got, len(plan.Moves))
	}
	// Every move landed on its planned destination with the old owner's
	// records, and every device in the union saw the cutover broadcast.
	for _, mv := range plan.Moves {
		recs := ft.installed[mv.To][mv.Bucket]
		if len(recs) != 1 || recs[0][0] != fmt.Sprintf("r-%d", mv.Bucket) {
			t.Errorf("bucket %d on device %d: got %v", mv.Bucket, mv.To, recs)
		}
	}
	for dev := 0; dev < 4; dev++ {
		if !ft.cut[dev] {
			t.Errorf("device %d never cut over", dev)
		}
	}
	st, err := persist.LoadRescale(journal)
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != persist.RescaleDone {
		t.Errorf("journal phase %q, want done", st.Phase)
	}
}

func TestDriverResumeSkipsJournaledBuckets(t *testing.T) {
	oldSpec, newSpec, parts, plan := growFixture(t)
	journal := filepath.Join(t.TempDir(), "rescale.journal")

	// A prior run copied the first half of the moves, then died.
	done := make([]int, 0)
	for _, mv := range plan.Moves[:len(plan.Moves)/2] {
		done = append(done, mv.Bucket)
	}
	if err := persist.SaveRescale(journal, &persist.RescaleState{
		OldSpec: oldSpec, NewSpec: newSpec,
		Phase: persist.RescaleCopying, Done: done,
	}); err != nil {
		t.Fatal(err)
	}

	ft := newFakeTransport(parts)
	d, err := NewDriver(DriverConfig{
		OldSpec: oldSpec, NewSpec: newSpec, Transport: ft, JournalPath: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, b := range done {
		if ft.fetches[b] != 0 {
			t.Errorf("bucket %d re-fetched despite journal", b)
		}
	}
	for _, mv := range plan.Moves[len(plan.Moves)/2:] {
		if ft.fetches[mv.Bucket] != 1 {
			t.Errorf("bucket %d fetched %d times, want 1", mv.Bucket, ft.fetches[mv.Bucket])
		}
	}
}

func TestDriverRetriesTransientFaults(t *testing.T) {
	oldSpec, newSpec, parts, _ := growFixture(t)
	ft := newFakeTransport(parts)
	failures := map[string]int{}
	ft.fault = func(op string, dev int) error {
		key := fmt.Sprintf("%s-%d", op, dev)
		if failures[key] < 2 {
			failures[key]++
			return errors.New("transient")
		}
		return nil
	}
	d, err := NewDriver(DriverConfig{
		OldSpec: oldSpec, NewSpec: newSpec, Transport: ft,
		Retries: 4, RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatalf("driver did not absorb transient faults: %v", err)
	}
}

func TestDriverAbortRollsBack(t *testing.T) {
	oldSpec, newSpec, parts, _ := growFixture(t)
	ft := newFakeTransport(parts)
	var rolledBack bool
	d, err := NewDriver(DriverConfig{
		OldSpec: oldSpec, NewSpec: newSpec, Transport: ft,
		GuardPoll:      time.Millisecond,
		Guard:          func() error { return errors.New("not yet") },
		BeforeRollback: func() { rolledBack = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- d.Run(context.Background()) }()
	deadline := time.Now().Add(10 * time.Second)
	for d.Status().Phase != persist.RescaleDualRead {
		if time.Now().After(deadline) {
			t.Fatalf("never reached dual-read: %+v", d.Status())
		}
		time.Sleep(time.Millisecond)
	}
	d.Abort()
	if err := <-errCh; !errors.Is(err, ErrAborted) {
		t.Fatalf("Run returned %v, want ErrAborted", err)
	}
	if !rolledBack {
		t.Error("BeforeRollback never called")
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	for dev := 0; dev < 4; dev++ {
		if !ft.aborted[dev] {
			t.Errorf("device %d never got the abort broadcast", dev)
		}
		if ft.cut[dev] {
			t.Errorf("device %d cut over despite abort", dev)
		}
	}
}

func TestDriverPauseHoldsCopies(t *testing.T) {
	oldSpec, newSpec, parts, plan := growFixture(t)
	ft := newFakeTransport(parts)
	d, err := NewDriver(DriverConfig{
		OldSpec: oldSpec, NewSpec: newSpec, Transport: ft, Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Pause()
	errCh := make(chan error, 1)
	go func() { errCh <- d.Run(context.Background()) }()
	time.Sleep(20 * time.Millisecond)
	if got := d.Status().Copied; got != 0 {
		t.Fatalf("%d buckets copied while paused", got)
	}
	d.Resume()
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if got := d.Status().Copied; got != len(plan.Moves) {
		t.Fatalf("%d buckets copied after resume, want %d", got, len(plan.Moves))
	}
}

func TestDriverRejectsFinishedJournal(t *testing.T) {
	oldSpec, newSpec, _, _ := growFixture(t)
	journal := filepath.Join(t.TempDir(), "rescale.journal")
	if err := persist.SaveRescale(journal, &persist.RescaleState{
		OldSpec: oldSpec, NewSpec: newSpec, Phase: persist.RescaleDone,
	}); err != nil {
		t.Fatal(err)
	}
	_, err := NewDriver(DriverConfig{
		OldSpec: oldSpec, NewSpec: newSpec,
		Transport: newFakeTransport(nil), JournalPath: journal,
	})
	if err == nil {
		t.Fatal("driver adopted a finished journal")
	}
}
