package rebalance

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"fxdist/internal/obs"
	"fxdist/internal/telemetry"
)

// The /debug/rescale endpoint: GET reports every registered driver's
// status plus the recent migration event ring; POST steers a run
// (action=pause|resume|abort, name=<driver> when several are live).
// fxnode mounts it with the rest of the debug server; fxtop reads it
// for the migration-progress row.

var (
	driversMu sync.Mutex
	drivers   = map[string]*Driver{}
	httpOnce  sync.Once
)

// RegisterDriver publishes a driver on /debug/rescale under name,
// replacing any previous holder of the name. The first registration
// mounts the endpoint.
func RegisterDriver(name string, d *Driver) {
	httpOnce.Do(func() {
		obs.RegisterDebugHandler("/debug/rescale", "live rescale migration status and control", http.HandlerFunc(serveRescale))
	})
	driversMu.Lock()
	defer driversMu.Unlock()
	drivers[name] = d
}

// UnregisterDriver removes a driver from /debug/rescale.
func UnregisterDriver(name string) {
	driversMu.Lock()
	defer driversMu.Unlock()
	delete(drivers, name)
}

// lookupDriver resolves name, defaulting to the sole registered driver.
func lookupDriver(name string) (*Driver, error) {
	driversMu.Lock()
	defer driversMu.Unlock()
	if name != "" {
		d, ok := drivers[name]
		if !ok {
			return nil, fmt.Errorf("no rescale named %q", name)
		}
		return d, nil
	}
	if len(drivers) == 1 {
		for _, d := range drivers {
			return d, nil
		}
	}
	return nil, fmt.Errorf("%d rescales registered; pass name=", len(drivers))
}

// RescaleDebugState is the /debug/rescale GET document.
type RescaleDebugState struct {
	Rescales map[string]DriverStatus  `json:"rescales"`
	Events   []telemetry.RescaleEvent `json:"events"`
}

// DebugState snapshots what /debug/rescale serves — also used directly
// by in-process callers (fxnode's status verb under test).
func DebugState() RescaleDebugState {
	driversMu.Lock()
	st := RescaleDebugState{Rescales: make(map[string]DriverStatus, len(drivers))}
	for name, d := range drivers {
		st.Rescales[name] = d.Status()
	}
	driversMu.Unlock()
	st.Events = telemetry.RescaleEvents()
	return st
}

func serveRescale(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(DebugState()) //nolint:errcheck // best-effort debug output
	case http.MethodPost:
		d, err := lookupDriver(r.FormValue("name"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		action := r.FormValue("action")
		switch action {
		case "pause":
			d.Pause()
		case "resume":
			d.Resume()
		case "abort":
			d.Abort()
		default:
			http.Error(w, fmt.Sprintf("unknown action %q (want pause|resume|abort)", action), http.StatusBadRequest)
			return
		}
		fmt.Fprintf(w, "%s: ok\n", action)
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

// DriverNames lists the registered rescales, sorted.
func DriverNames() []string {
	driversMu.Lock()
	defer driversMu.Unlock()
	names := make([]string, 0, len(drivers))
	for name := range drivers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
