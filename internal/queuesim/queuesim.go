// Package queuesim extends the paper's single-query response-time model
// (§5.2.1) to a sustained workload: a stream of partial match queries
// arrives over time, each query's per-device bucket work joins that
// device's FIFO queue, and a query completes when its slowest device
// finishes its share. Declustering skew compounds under load — a device
// that gets twice the buckets of its peers not only slows its own query
// but delays every queued successor — so the gap between FX and Modulo
// widens with utilization. The simulation is a deterministic discrete-
// event run over device timelines.
package queuesim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"fxdist/internal/convolve"
	"fxdist/internal/decluster"
	"fxdist/internal/obs"
	"fxdist/internal/query"
	"fxdist/internal/storage"
)

// Job is one query's arrival time and per-device bucket work.
type Job struct {
	Arrival time.Duration
	// Loads[d] is the number of qualified buckets on device d.
	Loads []int
}

// QueryStats reports one job's outcome.
type QueryStats struct {
	Arrival    time.Duration
	Completion time.Duration
	// Response is Completion - Arrival: queueing delay plus service.
	Response time.Duration
}

// Stats aggregates a simulation run.
type Stats struct {
	PerQuery     []QueryStats
	MeanResponse time.Duration
	MaxResponse  time.Duration
	// Makespan is the completion time of the last job.
	Makespan time.Duration
	// DeviceBusy[d] is device d's total busy time; Utilization[d] is
	// DeviceBusy[d] / Makespan.
	DeviceBusy  []time.Duration
	Utilization []float64
	// DeviceWait[d] is device d's total queue wait — time device tasks
	// spent queued behind earlier work (start - arrival, summed). Skewed
	// declustering shows up here first: the overloaded device's queue
	// wait grows while its peers stay near zero.
	DeviceWait []time.Duration
}

// waitHists returns the per-device simulated queue-wait histograms
// (fxdist_queuesim_device_wait_seconds{device=...}) so simulated skew
// lands on the same dashboard as the live per-device latencies.
func waitHists(m int) []*obs.Histogram {
	hs := make([]*obs.Histogram, m)
	for d := range hs {
		hs[d] = obs.Default().Histogram("fxdist_queuesim_device_wait_seconds",
			"Simulated per-device queue wait (task start minus job arrival) in Run/RunClosed.",
			nil, obs.L("device", strconv.Itoa(d)))
	}
	return hs
}

// Run simulates the job stream under the device cost model. Jobs are
// processed in arrival order (ties broken by input order); each device
// serves its queue FIFO. Every job must carry the same number of device
// loads.
func Run(jobs []Job, model storage.CostModel) (Stats, error) {
	if len(jobs) == 0 {
		return Stats{}, fmt.Errorf("queuesim: no jobs")
	}
	m := len(jobs[0].Loads)
	for i, j := range jobs {
		if len(j.Loads) != m {
			return Stats{}, fmt.Errorf("queuesim: job %d has %d device loads, job 0 has %d", i, len(j.Loads), m)
		}
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return jobs[order[a]].Arrival < jobs[order[b]].Arrival
	})

	deviceFree := make([]time.Duration, m)
	busy := make([]time.Duration, m)
	wait := make([]time.Duration, m)
	hists := waitHists(m)
	stats := Stats{PerQuery: make([]QueryStats, len(jobs))}
	var totalResp time.Duration
	for _, idx := range order {
		j := jobs[idx]
		completion := j.Arrival
		for d, load := range j.Loads {
			if load == 0 {
				continue
			}
			service := model.PerQuery + time.Duration(load)*model.PerBucket
			start := j.Arrival
			if deviceFree[d] > start {
				start = deviceFree[d]
			}
			wait[d] += start - j.Arrival
			hists[d].Observe((start - j.Arrival).Seconds())
			end := start + service
			deviceFree[d] = end
			busy[d] += service
			if end > completion {
				completion = end
			}
		}
		qs := QueryStats{Arrival: j.Arrival, Completion: completion, Response: completion - j.Arrival}
		stats.PerQuery[idx] = qs
		totalResp += qs.Response
		if qs.Response > stats.MaxResponse {
			stats.MaxResponse = qs.Response
		}
		if completion > stats.Makespan {
			stats.Makespan = completion
		}
	}
	stats.MeanResponse = totalResp / time.Duration(len(jobs))
	stats.DeviceBusy = busy
	stats.DeviceWait = wait
	stats.Utilization = make([]float64, m)
	if stats.Makespan > 0 {
		for d, bz := range busy {
			stats.Utilization[d] = float64(bz) / float64(stats.Makespan)
		}
	}
	return stats, nil
}

// RunClosed simulates a closed system with a fixed multiprogramming
// level: `clients` concurrent clients cycle through the pool of per-query
// device-load vectors (client c starts at pool index c and strides by the
// client count), each issuing its next query the moment the previous one
// completes, until `completions` queries have finished. The classic MPL
// experiment: throughput (completions/makespan) rises with clients until
// the most-loaded device saturates — and declustering skew lowers that
// ceiling.
func RunClosed(pool [][]int, clients, completions int, model storage.CostModel) (Stats, error) {
	if len(pool) == 0 {
		return Stats{}, fmt.Errorf("queuesim: empty query pool")
	}
	if clients <= 0 || completions <= 0 {
		return Stats{}, fmt.Errorf("queuesim: clients and completions must be positive")
	}
	m := len(pool[0])
	for i, loads := range pool {
		if len(loads) != m {
			return Stats{}, fmt.Errorf("queuesim: pool entry %d has %d device loads, entry 0 has %d", i, len(loads), m)
		}
	}

	deviceFree := make([]time.Duration, m)
	busy := make([]time.Duration, m)
	wait := make([]time.Duration, m)
	hists := waitHists(m)
	clientFree := make([]time.Duration, clients)
	clientNext := make([]int, clients)
	for c := range clientNext {
		clientNext[c] = c % len(pool)
	}

	stats := Stats{PerQuery: make([]QueryStats, 0, completions)}
	var totalResp time.Duration
	for done := 0; done < completions; done++ {
		// The next query comes from the client that frees up first
		// (ties: lowest client index).
		c := 0
		for i := 1; i < clients; i++ {
			if clientFree[i] < clientFree[c] {
				c = i
			}
		}
		arrival := clientFree[c]
		loads := pool[clientNext[c]]
		clientNext[c] = (clientNext[c] + clients) % len(pool)

		completion := arrival
		for d, load := range loads {
			if load == 0 {
				continue
			}
			service := model.PerQuery + time.Duration(load)*model.PerBucket
			start := arrival
			if deviceFree[d] > start {
				start = deviceFree[d]
			}
			wait[d] += start - arrival
			hists[d].Observe((start - arrival).Seconds())
			end := start + service
			deviceFree[d] = end
			busy[d] += service
			if end > completion {
				completion = end
			}
		}
		qs := QueryStats{Arrival: arrival, Completion: completion, Response: completion - arrival}
		stats.PerQuery = append(stats.PerQuery, qs)
		totalResp += qs.Response
		if qs.Response > stats.MaxResponse {
			stats.MaxResponse = qs.Response
		}
		if completion > stats.Makespan {
			stats.Makespan = completion
		}
		clientFree[c] = completion
	}
	stats.MeanResponse = totalResp / time.Duration(completions)
	stats.DeviceBusy = busy
	stats.DeviceWait = wait
	stats.Utilization = make([]float64, m)
	if stats.Makespan > 0 {
		for d, bz := range busy {
			stats.Utilization[d] = float64(bz) / float64(stats.Makespan)
		}
	}
	return stats, nil
}

// LoadPool precomputes per-query device-load vectors for RunClosed.
func LoadPool(a decluster.GroupAllocator, queries []query.Query) ([][]int, error) {
	pool := make([][]int, len(queries))
	for i, q := range queries {
		if err := q.Validate(a.FileSystem()); err != nil {
			return nil, fmt.Errorf("queuesim: query %d: %w", i, err)
		}
		pool[i] = convolve.Loads(a, q)
	}
	return pool, nil
}

// FromQueries builds jobs for a bucket-level query mix under an allocator,
// with the given arrival times (arrivals[i] pairs with queries[i]).
func FromQueries(a decluster.GroupAllocator, queries []query.Query, arrivals []time.Duration) ([]Job, error) {
	if len(queries) != len(arrivals) {
		return nil, fmt.Errorf("queuesim: %d queries, %d arrivals", len(queries), len(arrivals))
	}
	jobs := make([]Job, len(queries))
	for i, q := range queries {
		if err := q.Validate(a.FileSystem()); err != nil {
			return nil, fmt.Errorf("queuesim: query %d: %w", i, err)
		}
		jobs[i] = Job{Arrival: arrivals[i], Loads: convolve.Loads(a, q)}
	}
	return jobs, nil
}

// PoissonArrivals generates n arrival times with exponentially distributed
// interarrival gaps of the given mean, deterministically for a seed.
func PoissonArrivals(n int, mean time.Duration, seed int64) []time.Duration {
	r := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	t := 0.0
	for i := range out {
		t += r.ExpFloat64() * float64(mean)
		out[i] = time.Duration(math.Round(t))
	}
	return out
}

// UniformArrivals generates n arrival times with a fixed interarrival gap.
func UniformArrivals(n int, gap time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i) * gap
	}
	return out
}
