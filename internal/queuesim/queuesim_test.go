package queuesim

import (
	"testing"
	"time"

	"fxdist/internal/decluster"
	"fxdist/internal/field"
	"fxdist/internal/query"
	"fxdist/internal/storage"
	"fxdist/internal/workload"
)

// model with trivial arithmetic for hand-checkable expectations.
var unitModel = storage.CostModel{PerQuery: 0, PerBucket: time.Second}

func TestRunSingleJob(t *testing.T) {
	stats, err := Run([]Job{{Arrival: 0, Loads: []int{2, 1, 0}}}, unitModel)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PerQuery[0].Response != 2*time.Second {
		t.Errorf("response = %v, want 2s", stats.PerQuery[0].Response)
	}
	if stats.Makespan != 2*time.Second {
		t.Errorf("makespan = %v", stats.Makespan)
	}
	if stats.DeviceBusy[0] != 2*time.Second || stats.DeviceBusy[2] != 0 {
		t.Errorf("device busy = %v", stats.DeviceBusy)
	}
	if stats.Utilization[0] != 1.0 {
		t.Errorf("utilization = %v", stats.Utilization)
	}
}

// Two jobs hitting the same device queue FIFO: the second waits.
func TestRunQueueing(t *testing.T) {
	jobs := []Job{
		{Arrival: 0, Loads: []int{3}},
		{Arrival: time.Second, Loads: []int{1}},
	}
	stats, err := Run(jobs, unitModel)
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 arrives at 1s but device is busy until 3s; finishes at 4s.
	if got := stats.PerQuery[1].Completion; got != 4*time.Second {
		t.Errorf("job 1 completion = %v, want 4s", got)
	}
	if got := stats.PerQuery[1].Response; got != 3*time.Second {
		t.Errorf("job 1 response = %v, want 3s", got)
	}
}

// Arrival order is by time, not input order.
func TestRunSortsByArrival(t *testing.T) {
	jobs := []Job{
		{Arrival: 2 * time.Second, Loads: []int{1}},
		{Arrival: 0, Loads: []int{1}},
	}
	stats, err := Run(jobs, unitModel)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PerQuery[1].Completion != time.Second {
		t.Errorf("early job completion = %v, want 1s", stats.PerQuery[1].Completion)
	}
	if stats.PerQuery[0].Completion != 3*time.Second {
		t.Errorf("late job completion = %v, want 3s", stats.PerQuery[0].Completion)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, unitModel); err == nil {
		t.Error("empty job list accepted")
	}
	jobs := []Job{{Loads: []int{1}}, {Loads: []int{1, 2}}}
	if _, err := Run(jobs, unitModel); err == nil {
		t.Error("inconsistent device counts accepted")
	}
}

// Balanced declustering must beat skewed declustering under sustained
// load: FX vs Modulo on the Table 2 system with back-to-back whole-file
// queries.
func TestBalancedBeatsSkewedUnderLoad(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 16)
	fx := decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U}))
	md := decluster.NewModulo(fs)
	queries := make([]query.Query, 50)
	for i := range queries {
		queries[i] = query.All(2)
	}
	arrivals := UniformArrivals(50, time.Millisecond)
	run := func(a decluster.GroupAllocator) Stats {
		jobs, err := FromQueries(a, queries, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Run(jobs, storage.ParallelDisk)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	fxStats, mdStats := run(fx), run(md)
	if fxStats.MeanResponse >= mdStats.MeanResponse {
		t.Errorf("FX mean response %v not better than Modulo %v",
			fxStats.MeanResponse, mdStats.MeanResponse)
	}
	if fxStats.Makespan > mdStats.Makespan {
		t.Errorf("FX makespan %v worse than Modulo %v", fxStats.Makespan, mdStats.Makespan)
	}
}

// Total device busy time is conserved across allocators (declustering
// moves work, it does not create or destroy it).
func TestWorkConservation(t *testing.T) {
	fs := decluster.MustFileSystem([]int{8, 8, 4}, 8)
	fx := decluster.MustFX(fs)
	md := decluster.NewModulo(fs)
	queries, err := workload.BucketQueries(fs.Sizes, 30, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := UniformArrivals(30, time.Millisecond)
	sum := func(a decluster.GroupAllocator) time.Duration {
		jobs, err := FromQueries(a, queries, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Run(jobs, unitModel)
		if err != nil {
			t.Fatal(err)
		}
		var total time.Duration
		for _, b := range stats.DeviceBusy {
			total += b
		}
		return total
	}
	if sum(fx) != sum(md) {
		t.Error("total work differs between allocators")
	}
}

func TestFromQueriesValidation(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 8)
	fx := decluster.MustFX(fs)
	if _, err := FromQueries(fx, []query.Query{query.All(2)}, nil); err == nil {
		t.Error("arrival count mismatch accepted")
	}
	bad := query.New([]int{9, 0})
	if _, err := FromQueries(fx, []query.Query{bad}, []time.Duration{0}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestRunClosedValidation(t *testing.T) {
	if _, err := RunClosed(nil, 1, 1, unitModel); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := RunClosed([][]int{{1}}, 0, 1, unitModel); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := RunClosed([][]int{{1}}, 1, 0, unitModel); err == nil {
		t.Error("zero completions accepted")
	}
	if _, err := RunClosed([][]int{{1}, {1, 2}}, 1, 1, unitModel); err == nil {
		t.Error("inconsistent pool accepted")
	}
}

// One client: queries run back to back; makespan = sum of services.
func TestRunClosedSingleClient(t *testing.T) {
	pool := [][]int{{2}, {3}}
	stats, err := RunClosed(pool, 1, 4, unitModel) // 2,3,2,3 seconds
	if err != nil {
		t.Fatal(err)
	}
	if stats.Makespan != 10*time.Second {
		t.Errorf("makespan = %v, want 10s", stats.Makespan)
	}
	if stats.Utilization[0] != 1.0 {
		t.Errorf("utilization = %v, want 1", stats.Utilization[0])
	}
}

// More clients increase throughput until a device saturates.
func TestRunClosedThroughputRises(t *testing.T) {
	// Two devices, queries alternate hitting one device each.
	pool := [][]int{{4, 0}, {0, 4}}
	seq, err := RunClosed(pool, 1, 8, unitModel)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunClosed(pool, 2, 8, unitModel)
	if err != nil {
		t.Fatal(err)
	}
	if par.Makespan >= seq.Makespan {
		t.Errorf("2 clients (%v) not faster than 1 (%v)", par.Makespan, seq.Makespan)
	}
}

// Closed-loop comparison: FX sustains higher throughput than Modulo at
// the same multiprogramming level on the Table 2 grid.
func TestRunClosedFXBeatsModulo(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 16)
	fx := decluster.MustFX(fs, field.WithKinds([]field.Kind{field.I, field.U}))
	md := decluster.NewModulo(fs)
	queries, err := workload.BucketQueries(fs.Sizes, 40, 0.3, 17)
	if err != nil {
		t.Fatal(err)
	}
	run := func(a decluster.GroupAllocator) Stats {
		pool, err := LoadPool(a, queries)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := RunClosed(pool, 4, 200, storage.ParallelDisk)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	fxStats, mdStats := run(fx), run(md)
	if fxStats.Makespan > mdStats.Makespan {
		t.Errorf("FX makespan %v above Modulo %v", fxStats.Makespan, mdStats.Makespan)
	}
}

func TestLoadPoolValidation(t *testing.T) {
	fs := decluster.MustFileSystem([]int{4, 4}, 8)
	fx := decluster.MustFX(fs)
	if _, err := LoadPool(fx, []query.Query{query.New([]int{9, 0})}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestArrivalGenerators(t *testing.T) {
	u := UniformArrivals(4, time.Second)
	for i, a := range u {
		if a != time.Duration(i)*time.Second {
			t.Errorf("uniform arrival %d = %v", i, a)
		}
	}
	p1 := PoissonArrivals(100, time.Millisecond, 5)
	p2 := PoissonArrivals(100, time.Millisecond, 5)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("Poisson arrivals not deterministic for equal seeds")
		}
		if i > 0 && p1[i] < p1[i-1] {
			t.Fatal("Poisson arrivals not monotone")
		}
	}
	// Mean interarrival should approximate the requested mean.
	mean := p1[len(p1)-1] / 100
	if mean < 700*time.Microsecond || mean > 1300*time.Microsecond {
		t.Errorf("mean interarrival %v, want ~1ms", mean)
	}
}
