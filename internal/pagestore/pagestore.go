// Package pagestore is a durable per-device bucket store: the on-disk
// "local device" under the paper's data-distribution layer. Each parallel
// device persists its bucket partition in one log-structured file —
// CRC-framed appends, an in-memory bucket index rebuilt on open, and
// torn-tail recovery — so a simulated device cluster can survive restarts
// and the retrieval path can exercise real I/O.
//
// On-disk format (little endian), per frame:
//
//	[4] crc32(IEEE) of everything after this field
//	[4] bucket id
//	[4] payload length
//	[n] payload: one kind byte (put or tombstone), then the record's
//	    fields as length-prefixed strings
//
// A put frame stores a record; a tombstone deletes every equal record
// previously stored in the bucket. A frame whose CRC does not match — a
// torn write from a crash — ends the valid prefix; Open truncates the
// file there and continues. Frames are append-only; Sync makes them
// durable; Compact rewrites the log with only live put frames.
package pagestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
)

const frameHeaderSize = 12 // crc + bucket id + payload length

// Frame kinds (first payload byte).
const (
	kindPut       byte = 1
	kindTombstone byte = 2
)

// maxPayload guards against reading a corrupt length and allocating
// gigabytes.
const maxPayload = 16 << 20

// Store is one device's durable bucket store.
type Store struct {
	f    *os.File
	path string
	// index maps bucket id to the file offsets of its record frames.
	index map[uint32][]int64
	// size is the validated file length (append position).
	size int64
	// records counts stored records.
	records int
}

// Open opens or creates the store at path, rebuilding the bucket index by
// scanning the log. A torn final frame (crash during append) is detected
// by CRC and truncated away.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, path: path, index: make(map[uint32][]int64)}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	mOpens.Inc()
	mRecoveredRecords.Add(uint64(s.records))
	return s, nil
}

// recover scans the log, indexing valid frames and truncating at the
// first invalid one.
func (s *Store) recover() error {
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	fileSize := info.Size()
	var off int64
	header := make([]byte, frameHeaderSize)
	for off+frameHeaderSize <= fileSize {
		if _, err := s.f.ReadAt(header, off); err != nil {
			return err
		}
		crc := binary.LittleEndian.Uint32(header[0:4])
		bucket := binary.LittleEndian.Uint32(header[4:8])
		plen := binary.LittleEndian.Uint32(header[8:12])
		if plen > maxPayload || off+frameHeaderSize+int64(plen) > fileSize {
			break // torn or corrupt tail
		}
		payload := make([]byte, plen)
		if _, err := s.f.ReadAt(payload, off+frameHeaderSize); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(append(header[4:12:12], payload...)) != crc {
			break // corrupt frame: end of valid prefix
		}
		if plen == 0 {
			break // frames always carry a kind byte
		}
		switch payload[0] {
		case kindPut:
			s.index[bucket] = append(s.index[bucket], off)
			s.records++
		case kindTombstone:
			rec, err := decodeRecord(payload[1:])
			if err != nil {
				return fmt.Errorf("pagestore: corrupt tombstone at offset %d: %w", off, err)
			}
			if err := s.dropFromIndex(bucket, rec); err != nil {
				return err
			}
		default:
			return fmt.Errorf("pagestore: unknown frame kind %d at offset %d", payload[0], off)
		}
		off += frameHeaderSize + int64(plen)
	}
	if off < fileSize {
		if err := s.f.Truncate(off); err != nil {
			return err
		}
		mTornTails.Inc()
		obs.Infof("pagestore: %s: truncated torn tail at offset %d (was %d bytes)", s.path, off, fileSize)
	}
	s.size = off
	return nil
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Len returns the number of stored records.
func (s *Store) Len() int { return s.records }

// Buckets returns the number of non-empty buckets.
func (s *Store) Buckets() int { return len(s.index) }

// appendFrame writes one frame and returns its offset.
func (s *Store) appendFrame(kind byte, bucket uint32, rec mkhash.Record) (int64, error) {
	body := encodeRecord(rec)
	payload := make([]byte, 0, 1+len(body))
	payload = append(payload, kind)
	payload = append(payload, body...)
	if len(payload) > maxPayload {
		return 0, fmt.Errorf("pagestore: record of %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[4:8], bucket)
	binary.LittleEndian.PutUint32(frame[8:12], uint32(len(payload)))
	copy(frame[frameHeaderSize:], payload)
	binary.LittleEndian.PutUint32(frame[0:4], crc32.ChecksumIEEE(frame[4:]))
	off := s.size
	if _, err := s.f.WriteAt(frame, off); err != nil {
		return 0, err
	}
	s.size += int64(len(frame))
	return off, nil
}

// Append stores one record in the given bucket. The write is buffered by
// the OS until Sync.
func (s *Store) Append(bucket uint32, rec mkhash.Record) error {
	t0 := time.Now()
	off, err := s.appendFrame(kindPut, bucket, rec)
	mAppend.ObserveSince(t0)
	if err != nil {
		return err
	}
	s.index[bucket] = append(s.index[bucket], off)
	s.records++
	return nil
}

// recordsEqual compares two records field-wise.
func recordsEqual(a, b mkhash.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dropFromIndex removes every live offset in the bucket whose stored
// record equals rec, decrementing the record count.
func (s *Store) dropFromIndex(bucket uint32, rec mkhash.Record) error {
	offs := s.index[bucket]
	kept := offs[:0]
	for _, off := range offs {
		stored, _, err := s.readFrame(off)
		if err != nil {
			return err
		}
		if recordsEqual(stored, rec) {
			s.records--
			continue
		}
		kept = append(kept, off)
	}
	if len(kept) == 0 {
		delete(s.index, bucket)
	} else {
		s.index[bucket] = kept
	}
	return nil
}

// Delete removes every record equal to rec from the bucket, returning the
// number removed. A tombstone frame is appended so the deletion survives
// restarts; deleting a record that is not present writes nothing.
func (s *Store) Delete(bucket uint32, rec mkhash.Record) (int, error) {
	matches := 0
	for _, off := range s.index[bucket] {
		stored, _, err := s.readFrame(off)
		if err != nil {
			return 0, err
		}
		if recordsEqual(stored, rec) {
			matches++
		}
	}
	if matches == 0 {
		return 0, nil
	}
	if _, err := s.appendFrame(kindTombstone, bucket, rec); err != nil {
		return 0, err
	}
	mTombstones.Inc()
	if err := s.dropFromIndex(bucket, rec); err != nil {
		return 0, err
	}
	return matches, nil
}

// Compact rewrites the log with only live put frames (dropping tombstones
// and deleted records), fsyncs it, and atomically replaces the old file.
// Scan order within each bucket is preserved.
func (s *Store) Compact() error {
	t0 := time.Now()
	oldSize := s.size
	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath)
	next := &Store{f: tmp, path: s.path, index: make(map[uint32][]int64)}
	for bucket, offs := range s.index {
		for _, off := range offs {
			rec, _, err := s.readFrame(off)
			if err != nil {
				tmp.Close()
				return err
			}
			if err := next.Append(bucket, rec); err != nil {
				tmp.Close()
				return err
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close()
		return err
	}
	old := s.f
	s.f = tmp
	s.index = next.index
	s.size = next.size
	s.records = next.records
	mCompactions.Inc()
	obs.Infof("pagestore: %s: compacted %d -> %d bytes (%d live records) in %v",
		s.path, oldSize, s.size, s.records, time.Since(t0))
	return old.Close()
}

// Scan calls fn for every record in the bucket, in append order.
func (s *Store) Scan(bucket uint32, fn func(rec mkhash.Record) error) error {
	for _, off := range s.index[bucket] {
		rec, _, err := s.readFrame(off)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// EachBucket calls fn for every non-empty bucket id.
func (s *Store) EachBucket(fn func(bucket uint32) error) error {
	for b := range s.index {
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) readFrame(off int64) (mkhash.Record, int64, error) {
	header := make([]byte, frameHeaderSize)
	if _, err := s.f.ReadAt(header, off); err != nil {
		return nil, 0, err
	}
	plen := binary.LittleEndian.Uint32(header[8:12])
	if plen == 0 {
		return nil, 0, fmt.Errorf("pagestore: empty frame at offset %d", off)
	}
	payload := make([]byte, plen)
	if _, err := s.f.ReadAt(payload, off+frameHeaderSize); err != nil {
		return nil, 0, err
	}
	rec, err := decodeRecord(payload[1:]) // skip the kind byte
	if err != nil {
		return nil, 0, err
	}
	return rec, off + frameHeaderSize + int64(plen), nil
}

// Sync flushes appended frames to stable storage.
func (s *Store) Sync() error {
	t0 := time.Now()
	err := s.f.Sync()
	mSync.ObserveSince(t0)
	return err
}

// Close syncs and closes the store.
func (s *Store) Close() error {
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// encodeRecord serialises a record as a field count followed by
// length-prefixed field values.
func encodeRecord(rec mkhash.Record) []byte {
	n := binary.MaxVarintLen64
	for _, v := range rec {
		n += binary.MaxVarintLen64 + len(v)
	}
	buf := make([]byte, 0, n)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	put(uint64(len(rec)))
	for _, v := range rec {
		put(uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

func decodeRecord(payload []byte) (mkhash.Record, error) {
	rd := payload
	take := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, io.ErrUnexpectedEOF
		}
		rd = rd[n:]
		return v, nil
	}
	count, err := take()
	if err != nil {
		return nil, fmt.Errorf("pagestore: corrupt record header")
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("pagestore: implausible field count %d", count)
	}
	rec := make(mkhash.Record, 0, count)
	for i := uint64(0); i < count; i++ {
		l, err := take()
		if err != nil || uint64(len(rd)) < l {
			return nil, fmt.Errorf("pagestore: corrupt field length")
		}
		rec = append(rec, string(rd[:l]))
		rd = rd[l:]
	}
	if len(rd) != 0 {
		return nil, fmt.Errorf("pagestore: %d trailing bytes in record frame", len(rd))
	}
	return rec, nil
}
