// Package pagestore is a durable per-device bucket store: the on-disk
// "local device" under the paper's data-distribution layer. Each parallel
// device persists its bucket partition in one log-structured file —
// CRC-framed appends, an in-memory bucket index rebuilt on open, and
// torn-tail recovery — so a simulated device cluster can survive restarts
// and the retrieval path can exercise real I/O.
//
// On-disk format (little endian), per frame:
//
//	[4] crc32(IEEE) of everything after this field
//	[4] bucket id
//	[4] payload length
//	[n] payload: one kind byte (put or tombstone), then the record's
//	    fields as length-prefixed strings
//
// A put frame stores a record; a tombstone deletes every equal record
// previously stored in the bucket. A frame whose CRC does not match — a
// torn write from a crash — ends the valid prefix; Open truncates the
// file there and continues. Frames are append-only; Sync makes them
// durable; Compact rewrites the log with only live put frames.
package pagestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"os"
	"time"

	"fxdist/internal/mempool"
	"fxdist/internal/mkhash"
	"fxdist/internal/obs"
)

const frameHeaderSize = 12 // crc + bucket id + payload length

// Frame kinds (first payload byte).
const (
	kindPut       byte = 1
	kindTombstone byte = 2
)

// maxPayload guards against reading a corrupt length and allocating
// gigabytes.
const maxPayload = 16 << 20

// Store is one device's durable bucket store.
type Store struct {
	f    *os.File
	path string
	// index maps bucket id to the file offsets of its record frames.
	index map[uint32][]int64
	// size is the validated file length (append position).
	size int64
	// records counts stored records.
	records int
	// frames recycles the encode/read buffers (the shared wire/page
	// slab pool by default; SetFramePool(nil) turns recycling off).
	frames *mempool.SlicePool[byte]
}

// SetFramePool replaces the store's frame buffer pool; nil disables
// pooling (every frame allocates). On-disk bytes are identical either
// way — the pool only changes where the scratch comes from.
func (s *Store) SetFramePool(p *mempool.SlicePool[byte]) { s.frames = p }

// Open opens or creates the store at path, rebuilding the bucket index by
// scanning the log. A torn final frame (crash during append) is detected
// by CRC and truncated away.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, path: path, index: make(map[uint32][]int64), frames: mempool.Frames}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	mOpens.Inc()
	mRecoveredRecords.Add(uint64(s.records))
	return s, nil
}

// recover scans the log, indexing valid frames and truncating at the
// first invalid one.
func (s *Store) recover() error {
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	fileSize := info.Size()
	var off int64
	var header [frameHeaderSize]byte
	for off+frameHeaderSize <= fileSize {
		if _, err := s.f.ReadAt(header[:], off); err != nil {
			return err
		}
		crc := binary.LittleEndian.Uint32(header[0:4])
		bucket := binary.LittleEndian.Uint32(header[4:8])
		plen := binary.LittleEndian.Uint32(header[8:12])
		if plen > maxPayload || off+frameHeaderSize+int64(plen) > fileSize {
			break // torn or corrupt tail
		}
		payload := s.frames.Get(int(plen))
		if _, err := s.f.ReadAt(payload, off+frameHeaderSize); err != nil {
			s.frames.Put(payload)
			return err
		}
		// Incremental CRC over header then payload — same digest as the
		// writer's single pass, no concatenation scratch.
		sum := crc32.ChecksumIEEE(header[4:12])
		sum = crc32.Update(sum, crc32.IEEETable, payload)
		if sum != crc || plen == 0 {
			// Corrupt frame, or one without its kind byte: end of the
			// valid prefix.
			s.frames.Put(payload)
			break
		}
		switch payload[0] {
		case kindPut:
			s.index[bucket] = append(s.index[bucket], off)
			s.records++
		case kindTombstone:
			rec, err := decodeRecord(payload[1:])
			if err != nil {
				s.frames.Put(payload)
				return fmt.Errorf("pagestore: corrupt tombstone at offset %d: %w", off, err)
			}
			if err := s.dropFromIndex(bucket, rec); err != nil {
				s.frames.Put(payload)
				return err
			}
		default:
			kind := payload[0]
			s.frames.Put(payload)
			return fmt.Errorf("pagestore: unknown frame kind %d at offset %d", kind, off)
		}
		s.frames.Put(payload)
		off += frameHeaderSize + int64(plen)
	}
	if off < fileSize {
		if err := s.f.Truncate(off); err != nil {
			return err
		}
		mTornTails.Inc()
		obs.Infof("pagestore: %s: truncated torn tail at offset %d (was %d bytes)", s.path, off, fileSize)
	}
	s.size = off
	return nil
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Len returns the number of stored records.
func (s *Store) Len() int { return s.records }

// Buckets returns the number of non-empty buckets.
func (s *Store) Buckets() int { return len(s.index) }

// appendFrame writes one frame and returns its offset. The frame is
// encoded directly into one exactly-sized pooled buffer (header, kind,
// record body) and recycled after the write; the bytes on disk are
// identical to what the two-copy encoder historically produced.
func (s *Store) appendFrame(kind byte, bucket uint32, rec mkhash.Record) (int64, error) {
	plen := 1 + recordSize(rec)
	if plen > maxPayload {
		return 0, fmt.Errorf("pagestore: record of %d bytes exceeds limit", plen)
	}
	frame := s.frames.Get(frameHeaderSize + plen)[:frameHeaderSize]
	binary.LittleEndian.PutUint32(frame[4:8], bucket)
	binary.LittleEndian.PutUint32(frame[8:12], uint32(plen))
	frame = append(frame, kind)
	frame = appendRecord(frame, rec)
	binary.LittleEndian.PutUint32(frame[0:4], crc32.ChecksumIEEE(frame[4:]))
	off := s.size
	_, err := s.f.WriteAt(frame, off)
	s.frames.Put(frame)
	if err != nil {
		return 0, err
	}
	s.size += int64(frameHeaderSize + plen)
	return off, nil
}

// Append stores one record in the given bucket. The write is buffered by
// the OS until Sync.
func (s *Store) Append(bucket uint32, rec mkhash.Record) error {
	t0 := time.Now()
	off, err := s.appendFrame(kindPut, bucket, rec)
	mAppend.ObserveSince(t0)
	if err != nil {
		return err
	}
	s.index[bucket] = append(s.index[bucket], off)
	s.records++
	return nil
}

// recordsEqual compares two records field-wise.
func recordsEqual(a, b mkhash.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dropFromIndex removes every live offset in the bucket whose stored
// record equals rec, decrementing the record count.
func (s *Store) dropFromIndex(bucket uint32, rec mkhash.Record) error {
	offs := s.index[bucket]
	kept := offs[:0]
	for _, off := range offs {
		stored, _, err := s.readFrame(off)
		if err != nil {
			return err
		}
		if recordsEqual(stored, rec) {
			s.records--
			continue
		}
		kept = append(kept, off)
	}
	if len(kept) == 0 {
		delete(s.index, bucket)
	} else {
		s.index[bucket] = kept
	}
	return nil
}

// Delete removes every record equal to rec from the bucket, returning the
// number removed. A tombstone frame is appended so the deletion survives
// restarts; deleting a record that is not present writes nothing.
func (s *Store) Delete(bucket uint32, rec mkhash.Record) (int, error) {
	matches := 0
	for _, off := range s.index[bucket] {
		stored, _, err := s.readFrame(off)
		if err != nil {
			return 0, err
		}
		if recordsEqual(stored, rec) {
			matches++
		}
	}
	if matches == 0 {
		return 0, nil
	}
	if _, err := s.appendFrame(kindTombstone, bucket, rec); err != nil {
		return 0, err
	}
	mTombstones.Inc()
	if err := s.dropFromIndex(bucket, rec); err != nil {
		return 0, err
	}
	return matches, nil
}

// Compact rewrites the log with only live put frames (dropping tombstones
// and deleted records), fsyncs it, and atomically replaces the old file.
// Scan order within each bucket is preserved.
func (s *Store) Compact() error {
	t0 := time.Now()
	oldSize := s.size
	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath)
	next := &Store{f: tmp, path: s.path, index: make(map[uint32][]int64)}
	for bucket, offs := range s.index {
		for _, off := range offs {
			rec, _, err := s.readFrame(off)
			if err != nil {
				tmp.Close()
				return err
			}
			if err := next.Append(bucket, rec); err != nil {
				tmp.Close()
				return err
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		tmp.Close()
		return err
	}
	old := s.f
	s.f = tmp
	s.index = next.index
	s.size = next.size
	s.records = next.records
	mCompactions.Inc()
	obs.Infof("pagestore: %s: compacted %d -> %d bytes (%d live records) in %v",
		s.path, oldSize, s.size, s.records, time.Since(t0))
	return old.Close()
}

// Scan calls fn for every record in the bucket, in append order.
func (s *Store) Scan(bucket uint32, fn func(rec mkhash.Record) error) error {
	for _, off := range s.index[bucket] {
		rec, _, err := s.readFrame(off)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// EachBucket calls fn for every non-empty bucket id.
func (s *Store) EachBucket(fn func(bucket uint32) error) error {
	for b := range s.index {
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) readFrame(off int64) (mkhash.Record, int64, error) {
	payload, err := s.readPayload(off)
	if err != nil {
		return nil, 0, err
	}
	rec, err := decodeRecord(payload[1:]) // skip the kind byte
	end := off + frameHeaderSize + int64(len(payload))
	s.frames.Put(payload)
	if err != nil {
		return nil, 0, err
	}
	return rec, end, nil
}

// readPayload reads one frame's payload into a pooled slab the caller
// must Put back once decoded.
func (s *Store) readPayload(off int64) ([]byte, error) {
	var header [frameHeaderSize]byte
	if _, err := s.f.ReadAt(header[:], off); err != nil {
		return nil, err
	}
	plen := binary.LittleEndian.Uint32(header[8:12])
	if plen == 0 {
		return nil, fmt.Errorf("pagestore: empty frame at offset %d", off)
	}
	payload := s.frames.Get(int(plen))
	if _, err := s.f.ReadAt(payload, off+frameHeaderSize); err != nil {
		s.frames.Put(payload)
		return nil, err
	}
	return payload, nil
}

// ScanInto is Scan with the decoded records materialised through b's
// arena: field-header slices and field bytes come from the builder's
// chunks instead of two allocations per record, and in pooled mode the
// whole scan's memory recycles on the builder's Release. Records are
// only valid as long as b's arena is (see mempool.RecordBuilder).
func (s *Store) ScanInto(bucket uint32, b *mempool.RecordBuilder, fn func(rec mkhash.Record) error) error {
	for _, off := range s.index[bucket] {
		payload, err := s.readPayload(off)
		if err != nil {
			return err
		}
		rec, err := decodeRecordInto(payload[1:], b)
		s.frames.Put(payload)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes appended frames to stable storage.
func (s *Store) Sync() error {
	t0 := time.Now()
	err := s.f.Sync()
	mSync.ObserveSince(t0)
	return err
}

// Close syncs and closes the store.
func (s *Store) Close() error {
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// uvarintLen returns the encoded size of v without encoding it.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// recordSize returns the exact encoded size of rec's body (field count
// followed by length-prefixed field values).
func recordSize(rec mkhash.Record) int {
	n := uvarintLen(uint64(len(rec)))
	for _, v := range rec {
		n += uvarintLen(uint64(len(v))) + len(v)
	}
	return n
}

// appendRecord serialises a record as a field count followed by
// length-prefixed field values.
func appendRecord(buf []byte, rec mkhash.Record) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rec)))
	for _, v := range rec {
		buf = binary.AppendUvarint(buf, uint64(len(v)))
		buf = append(buf, v...)
	}
	return buf
}

func decodeRecord(payload []byte) (mkhash.Record, error) {
	rd := payload
	take := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, io.ErrUnexpectedEOF
		}
		rd = rd[n:]
		return v, nil
	}
	count, err := take()
	if err != nil {
		return nil, fmt.Errorf("pagestore: corrupt record header")
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("pagestore: implausible field count %d", count)
	}
	rec := make(mkhash.Record, 0, count)
	for i := uint64(0); i < count; i++ {
		l, err := take()
		if err != nil || uint64(len(rd)) < l {
			return nil, fmt.Errorf("pagestore: corrupt field length")
		}
		rec = append(rec, string(rd[:l]))
		rd = rd[l:]
	}
	if len(rd) != 0 {
		return nil, fmt.Errorf("pagestore: %d trailing bytes in record frame", len(rd))
	}
	return rec, nil
}

// decodeRecordInto is decodeRecord drawing the field-header slice and
// field bytes from b's arena instead of fresh allocations. payload may
// be recycled as soon as the call returns — every byte is copied out.
func decodeRecordInto(payload []byte, b *mempool.RecordBuilder) (mkhash.Record, error) {
	rd := payload
	take := func() (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, io.ErrUnexpectedEOF
		}
		rd = rd[n:]
		return v, nil
	}
	count, err := take()
	if err != nil {
		return nil, fmt.Errorf("pagestore: corrupt record header")
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("pagestore: implausible field count %d", count)
	}
	fields := b.Fields(int(count))
	for i := range fields {
		l, err := take()
		if err != nil || uint64(len(rd)) < l {
			return nil, fmt.Errorf("pagestore: corrupt field length")
		}
		fields[i] = b.Bytes(rd[:l])
		rd = rd[l:]
	}
	if len(rd) != 0 {
		return nil, fmt.Errorf("pagestore: %d trailing bytes in record frame", len(rd))
	}
	return mkhash.Record(fields), nil
}
