package pagestore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"fxdist/internal/mkhash"
)

func tempStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dev0.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func collect(t *testing.T, s *Store, bucket uint32) []mkhash.Record {
	t.Helper()
	var out []mkhash.Record
	if err := s.Scan(bucket, func(r mkhash.Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendScanRoundTrip(t *testing.T) {
	s, _ := tempStore(t)
	defer s.Close()
	recs := []mkhash.Record{
		{"a", "b", "c"},
		{"", "empty first field ok", ""},
		{"unicode ✓", "tab\tand\nnewline", "x"},
	}
	for _, r := range recs {
		if err := s.Append(7, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(9, mkhash.Record{"other", "bucket", "z"}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, s, 7)
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("scan = %v, want %v", got, recs)
	}
	if len(collect(t, s, 9)) != 1 || len(collect(t, s, 8)) != 0 {
		t.Error("bucket isolation broken")
	}
	if s.Len() != 4 || s.Buckets() != 2 {
		t.Errorf("Len=%d Buckets=%d", s.Len(), s.Buckets())
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	s, path := tempStore(t)
	for i := 0; i < 100; i++ {
		if err := s.Append(uint32(i%10), mkhash.Record{fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 100 || s2.Buckets() != 10 {
		t.Fatalf("after reopen Len=%d Buckets=%d", s2.Len(), s2.Buckets())
	}
	got := collect(t, s2, 3)
	if len(got) != 10 || got[0][0] != "v3" || got[9][0] != "v93" {
		t.Errorf("bucket 3 after reopen = %v", got)
	}
}

// A torn tail (crash mid-append) must be truncated away on open, keeping
// every fully written frame.
func TestTornTailRecovery(t *testing.T) {
	s, path := tempStore(t)
	for i := 0; i < 20; i++ {
		if err := s.Append(1, mkhash.Record{fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop 3 bytes off the final frame.
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 19 {
		t.Fatalf("after torn-tail recovery Len=%d, want 19", s2.Len())
	}
	// The file must have been truncated to the valid prefix so appends
	// continue cleanly.
	if err := s2.Append(1, mkhash.Record{"post-crash"}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, s2, 1)
	if got[len(got)-1][0] != "post-crash" || got[18][0] != "v18" {
		t.Errorf("post-recovery contents wrong: %v", got[len(got)-2:])
	}
}

// A bit flip in a frame body must cut the log at that frame (CRC
// mismatch), not return corrupt data.
func TestCorruptFrameDetected(t *testing.T) {
	s, path := tempStore(t)
	for i := 0; i < 10; i++ {
		if err := s.Append(1, mkhash.Record{fmt.Sprintf("value-%02d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the 6th frame's payload.
	frameLen := len(raw) / 10
	raw[5*frameLen+frameHeaderSize+2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("after corruption Len=%d, want 5 (valid prefix)", s2.Len())
	}
}

// A frame announcing an absurd length must not cause a huge allocation.
func TestImplausibleLengthRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "evil.log")
	frame := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(frame[8:12], 0xFFFFFFF0)
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestEachBucket(t *testing.T) {
	s, _ := tempStore(t)
	defer s.Close()
	for i := 0; i < 30; i++ {
		s.Append(uint32(i%3), mkhash.Record{"x"})
	}
	seen := map[uint32]bool{}
	if err := s.EachBucket(func(b uint32) error {
		seen[b] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Errorf("EachBucket visited %v", seen)
	}
	wantErr := fmt.Errorf("stop")
	if err := s.EachBucket(func(uint32) error { return wantErr }); err != wantErr {
		t.Error("EachBucket did not propagate the callback error")
	}
}

func TestScanPropagatesCallbackError(t *testing.T) {
	s, _ := tempStore(t)
	defer s.Close()
	s.Append(0, mkhash.Record{"a"})
	wantErr := fmt.Errorf("stop")
	if err := s.Scan(0, func(mkhash.Record) error { return wantErr }); err != wantErr {
		t.Error("Scan did not propagate the callback error")
	}
}

// Record codec round-trips arbitrary field values, including empty and
// binary-looking strings.
func TestRecordCodecProperty(t *testing.T) {
	f := func(fields []string) bool {
		rec := mkhash.Record(fields)
		decoded, err := decodeRecord(appendRecord(nil, rec))
		if err != nil {
			return false
		}
		if len(decoded) != len(rec) {
			return false
		}
		for i := range rec {
			if decoded[i] != rec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeRecord([]byte{}); err == nil {
		t.Error("empty payload accepted")
	}
	// Field length exceeding payload.
	bad := []byte{1, 200, 1}
	if _, err := decodeRecord(bad); err == nil {
		t.Error("overlong field accepted")
	}
	// Trailing bytes.
	good := appendRecord(nil, mkhash.Record{"a"})
	if _, err := decodeRecord(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestOpenFailsOnDirectory(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("Open on a directory succeeded")
	}
}
