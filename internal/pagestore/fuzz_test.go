package pagestore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fxdist/internal/mkhash"
)

// FuzzDecodeRecord: arbitrary payload bytes must never panic, and any
// successfully decoded record must round-trip through the canonical
// encoding. (Byte-level bijectivity does not hold: varints have
// non-minimal encodings, which decode fine but re-encode minimally.)
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRecord(nil, mkhash.Record{"a", "b"}))
	f.Add(appendRecord(nil, mkhash.Record{""}))
	f.Add([]byte{0x80, 0x00}) // non-minimal varint for 0
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecord(payload)
		if err != nil {
			return
		}
		canonical := appendRecord(nil, rec)
		again, err := decodeRecord(canonical)
		if err != nil {
			t.Fatalf("canonical re-encoding failed to decode: %v", err)
		}
		if len(again) != len(rec) {
			t.Fatalf("round trip changed arity: %d vs %d", len(again), len(rec))
		}
		for i := range rec {
			if again[i] != rec[i] {
				t.Fatalf("round trip changed field %d", i)
			}
		}
		if !bytes.Equal(appendRecord(nil, again), canonical) {
			t.Fatal("canonical encoding not a fixed point")
		}
	})
}

// FuzzOpenRecovery: arbitrary file contents must open without panicking,
// and the store must remain appendable and scannable afterwards.
func FuzzOpenRecovery(f *testing.F) {
	f.Add([]byte{})
	// A valid single-frame log as seed.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.log")
	s, err := Open(path)
	if err != nil {
		f.Fatal(err)
	}
	if err := s.Append(3, mkhash.Record{"x", "y"}); err != nil {
		f.Fatal(err)
	}
	s.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(append(raw, 0xDE, 0xAD))

	f.Fuzz(func(t *testing.T, contents []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(p, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(p)
		if err != nil {
			return // I/O errors are acceptable; panics are not
		}
		defer st.Close()
		if err := st.Append(1, mkhash.Record{"post"}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		found := false
		if err := st.Scan(1, func(r mkhash.Record) error {
			if len(r) == 1 && r[0] == "post" {
				found = true
			}
			return nil
		}); err != nil {
			t.Fatalf("scan after recovery: %v", err)
		}
		if !found {
			t.Fatal("appended record not found after recovery")
		}
	})
}
