package pagestore

import "fxdist/internal/obs"

// Package-wide instruments: pagestore is the per-device substrate, so
// its metrics aggregate across every open store in the process (device
// attribution lives one layer up, in storage and netdist).
var (
	mAppend = obs.Default().Histogram("fxdist_pagestore_append_seconds",
		"Latency of one record append (frame encode + buffered write).", nil)
	mSync = obs.Default().Histogram("fxdist_pagestore_sync_seconds",
		"Latency of one fsync making appended frames durable.", nil)
	mOpens = obs.Default().Counter("fxdist_pagestore_opens_total",
		"Store opens (including creations), each replaying the log to rebuild the index.")
	mTornTails = obs.Default().Counter("fxdist_pagestore_torn_tails_total",
		"Recoveries that truncated a torn or corrupt log tail.")
	mRecoveredRecords = obs.Default().Counter("fxdist_pagestore_recovered_records_total",
		"Live records recovered from logs during open.")
	mCompactions = obs.Default().Counter("fxdist_pagestore_compactions_total",
		"Log compactions (tombstone and dead-frame garbage collection).")
	mTombstones = obs.Default().Counter("fxdist_pagestore_tombstones_total",
		"Tombstone frames appended by deletes.")
)
