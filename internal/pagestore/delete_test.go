package pagestore

import (
	"fmt"
	"os"
	"testing"

	"fxdist/internal/mkhash"
)

func TestDeleteRemovesMatches(t *testing.T) {
	s, _ := tempStore(t)
	defer s.Close()
	s.Append(1, mkhash.Record{"dup"})  //nolint:errcheck
	s.Append(1, mkhash.Record{"keep"}) //nolint:errcheck
	s.Append(1, mkhash.Record{"dup"})  //nolint:errcheck
	s.Append(2, mkhash.Record{"dup"})  //nolint:errcheck // other bucket untouched
	n, err := s.Delete(1, mkhash.Record{"dup"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("deleted %d, want 2", n)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	got := collect(t, s, 1)
	if len(got) != 1 || got[0][0] != "keep" {
		t.Errorf("bucket 1 after delete = %v", got)
	}
	if len(collect(t, s, 2)) != 1 {
		t.Error("delete leaked into another bucket")
	}
	// Deleting a missing record writes nothing and reports zero.
	sizeBefore := s.size
	n, err = s.Delete(1, mkhash.Record{"missing"})
	if err != nil || n != 0 {
		t.Errorf("delete missing = %d, %v", n, err)
	}
	if s.size != sizeBefore {
		t.Error("tombstone written for a missing record")
	}
}

// Tombstones must survive restarts: the deletion replays from the log.
func TestDeletePersistsAcrossReopen(t *testing.T) {
	s, path := tempStore(t)
	for i := 0; i < 10; i++ {
		s.Append(1, mkhash.Record{fmt.Sprintf("v%d", i%3)}) //nolint:errcheck
	}
	if _, err := s.Delete(1, mkhash.Record{"v1"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, r := range collect(t, s2, 1) {
		if r[0] == "v1" {
			t.Fatal("deleted record resurrected after reopen")
		}
	}
	// v1 was written for i in {1, 4, 7}: 3 copies deleted, 7 remain.
	if s2.Len() != 7 {
		t.Errorf("Len after reopen = %d, want 7", s2.Len())
	}
}

func TestCompactShrinksAndPreserves(t *testing.T) {
	s, path := tempStore(t)
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Append(uint32(i%5), mkhash.Record{fmt.Sprintf("v%d", i)}) //nolint:errcheck
	}
	for i := 0; i < 25; i++ {
		if _, err := s.Delete(uint32(i%5), mkhash.Record{fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	liveBefore := map[string]bool{}
	for b := uint32(0); b < 5; b++ {
		for _, r := range collect(t, s, b) {
			liveBefore[fmt.Sprintf("%d/%s", b, r[0])] = true
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink: %d -> %d", before.Size(), after.Size())
	}
	if s.Len() != 25 {
		t.Errorf("Len after compact = %d, want 25", s.Len())
	}
	for b := uint32(0); b < 5; b++ {
		for _, r := range collect(t, s, b) {
			key := fmt.Sprintf("%d/%s", b, r[0])
			if !liveBefore[key] {
				t.Fatalf("record %s appeared from nowhere", key)
			}
			delete(liveBefore, key)
		}
	}
	if len(liveBefore) != 0 {
		t.Errorf("records lost in compaction: %v", liveBefore)
	}
	// The store remains usable after compaction.
	if err := s.Append(1, mkhash.Record{"post-compact"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(1, mkhash.Record{"post-compact"}); err != nil {
		t.Fatal(err)
	}
}

func TestPathAndSync(t *testing.T) {
	s, path := tempStore(t)
	defer s.Close()
	if s.Path() != path {
		t.Errorf("Path = %q, want %q", s.Path(), path)
	}
	if err := s.Append(0, mkhash.Record{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("Sync failed: %v", err)
	}
}

// Operations on a closed store surface errors rather than corrupting.
func TestOperationsAfterClose(t *testing.T) {
	s, _ := tempStore(t)
	s.Append(0, mkhash.Record{"x"}) //nolint:errcheck
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(0, mkhash.Record{"y"}); err == nil {
		t.Error("append after close succeeded")
	}
	if err := s.Scan(0, func(mkhash.Record) error { return nil }); err == nil {
		t.Error("scan after close succeeded")
	}
}

// Compacted stores reopen correctly.
func TestCompactThenReopen(t *testing.T) {
	s, path := tempStore(t)
	for i := 0; i < 20; i++ {
		s.Append(3, mkhash.Record{fmt.Sprintf("v%d", i)}) //nolint:errcheck
	}
	if _, err := s.Delete(3, mkhash.Record{"v7"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 19 {
		t.Errorf("Len = %d, want 19", s2.Len())
	}
}
