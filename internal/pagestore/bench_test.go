package pagestore

import (
	"fmt"
	"path/filepath"
	"testing"

	"fxdist/internal/mkhash"
)

func benchStore(b *testing.B) *Store {
	b.Helper()
	s, err := Open(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func BenchmarkAppend(b *testing.B) {
	s := benchStore(b)
	rec := mkhash.Record{"part-1234", "supplier-56", "warehouse-7", "active"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(uint32(i%256), rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	s := benchStore(b)
	for i := 0; i < 4096; i++ {
		if err := s.Append(uint32(i%16), mkhash.Record{fmt.Sprintf("v%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := s.Scan(uint32(i%16), func(mkhash.Record) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if n != 256 {
			b.Fatalf("scanned %d", n)
		}
	}
}

func BenchmarkOpenRecovery(b *testing.B) {
	path := filepath.Join(b.TempDir(), "recover.log")
	s, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := s.Append(uint32(i%64), mkhash.Record{fmt.Sprintf("v%d", i), "x", "y"}); err != nil {
			b.Fatal(err)
		}
	}
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if s2.Len() != 20000 {
			b.Fatalf("Len = %d", s2.Len())
		}
		s2.Close()
	}
}
