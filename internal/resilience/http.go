package resilience

import (
	"fmt"
	"io"
	"net/http"

	"fxdist/internal/obs"
	"fxdist/internal/retry"
)

func init() {
	obs.RegisterDebugHandler("/debug/resilience", "retry budgets, circuit breaker states, hedging and fault-injector counters", Handler())
}

// Snapshot is the /debug/resilience document: every retry controller
// (breaker states, retry/hedge/partial counters) and every fault
// injector (schedules and injection counters).
type Snapshot struct {
	Retry     []retry.Report `json:"retry"`
	Injectors []Report       `json:"injectors"`
}

// Handler serves the resilience snapshot: JSON by default, a
// human-readable summary with ?format=text.
func Handler() http.Handler {
	return obs.DebugEndpoint(
		func() (any, error) {
			return Snapshot{Retry: retry.ReportAll(), Injectors: ReportAll()}, nil
		},
		func(w io.Writer, doc any) { writeText(w, doc.(Snapshot)) },
	)
}

func writeText(w io.Writer, s Snapshot) {
	if len(s.Retry) == 0 && len(s.Injectors) == 0 {
		fmt.Fprintln(w, "no retry controllers or fault injectors registered")
		return
	}
	for _, r := range s.Retry {
		fmt.Fprintf(w, "retry %s max-attempts=%d retries=%d rejected=%d hedges=%d hedge-wins=%d partials=%d\n",
			r.Backend, r.MaxAttempts, r.Retries, r.Rejected, r.Hedges, r.HedgeWins, r.Partials)
		for _, b := range r.Breakers {
			fmt.Fprintf(w, "  breaker %+v\n", b)
		}
	}
	for _, in := range s.Injectors {
		fmt.Fprintf(w, "injector %s seed=%d\n", in.Name, in.Seed)
		for _, d := range in.Devices {
			fmt.Fprintf(w, "  device %d ops=%d injected=%d delayed=%d schedule=%+v\n",
				d.Device, d.Ops, d.Injected, d.Delayed, d.Schedule)
		}
	}
}
