package resilience

import (
	"encoding/json"
	"net/http"

	"fxdist/internal/obs"
	"fxdist/internal/retry"
)

func init() {
	obs.RegisterDebugHandler("/debug/resilience", Handler())
}

// Snapshot is the /debug/resilience document: every retry controller
// (breaker states, retry/hedge/partial counters) and every fault
// injector (schedules and injection counters).
type Snapshot struct {
	Retry     []retry.Report `json:"retry"`
	Injectors []Report       `json:"injectors"`
}

// Handler serves the resilience snapshot as JSON.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Snapshot{Retry: retry.ReportAll(), Injectors: ReportAll()})
	})
}
