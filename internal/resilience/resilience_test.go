package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"fxdist/internal/engine"
	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

// Same seed and schedule must produce the identical fault sequence.
func TestInjectorDeterminism(t *testing.T) {
	sched := map[int]Schedule{0: {ErrorRate: 0.5}}
	seq := func() []bool {
		in := NewInjector("det", 7, sched)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Before(context.Background(), 0) != nil
		}
		return out
	}
	a, b := seq(), seq()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged across identical injectors", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("ErrorRate 0.5 produced %d/%d failures", fails, len(a))
	}
}

func TestInjectorPartitionAndClear(t *testing.T) {
	in := NewInjector("part", 1, map[int]Schedule{0: {Partition: true}})
	ctx := context.Background()
	if err := in.Before(ctx, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned device did not fail: %v", err)
	}
	// Unscheduled devices pass untouched.
	if err := in.Before(ctx, 1); err != nil {
		t.Fatalf("unscheduled device failed: %v", err)
	}
	in.Clear(0)
	if err := in.Before(ctx, 0); err != nil {
		t.Fatalf("cleared device still failing: %v", err)
	}
	in.Set(0, Schedule{Partition: true})
	if err := in.Before(ctx, 0); !errors.Is(err, ErrInjected) {
		t.Fatal("Set did not re-apply the partition")
	}
}

// FlapEvery=N alternates N successes with N failures, deterministically.
func TestInjectorFlap(t *testing.T) {
	in := NewInjector("flap", 1, map[int]Schedule{0: {FlapEvery: 2}})
	ctx := context.Background()
	want := []bool{false, false, true, true, false, false, true, true}
	for i, w := range want {
		got := in.Before(ctx, 0) != nil
		if got != w {
			t.Fatalf("op %d: failed=%v, want %v", i+1, got, w)
		}
	}
}

func TestInjectorLatency(t *testing.T) {
	in := NewInjector("lat", 1, map[int]Schedule{0: {Latency: 30 * time.Millisecond}})
	start := time.Now()
	if err := in.Before(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency injection slept only %v", d)
	}
	// A cancelled context cuts the sleep short.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	in.Set(1, Schedule{Latency: 10 * time.Second})
	start = time.Now()
	if err := in.Before(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx-cancelled delay returned %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("delay ignored the context deadline")
	}
}

func TestInjectorHangHonorsContext(t *testing.T) {
	in := NewInjector("hang", 1, map[int]Schedule{0: {Hang: true}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- in.Before(ctx, 0) }()
	select {
	case err := <-done:
		t.Fatalf("hang returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("hang returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hang did not release on cancellation")
	}
}

type innerDevice struct{ calls int }

func (d *innerDevice) Scan(ctx context.Context, q query.Query, pm mkhash.PartialMatch) (engine.Answer, error) {
	d.calls++
	return engine.Answer{Buckets: 5}, nil
}

func TestWrapFrontsDevices(t *testing.T) {
	inner := &innerDevice{}
	in := NewInjector("wrap", 1, map[int]Schedule{0: {Partition: true}})
	devs := in.Wrap([]engine.Device{inner, &innerDevice{}})
	if len(devs) != 2 {
		t.Fatalf("Wrap returned %d devices", len(devs))
	}
	if _, err := devs[0].Scan(context.Background(), query.Query{}, mkhash.PartialMatch{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("wrapped partitioned device returned %v", err)
	}
	if inner.calls != 0 {
		t.Fatal("inner device reached despite injected failure")
	}
	ans, err := devs[1].Scan(context.Background(), query.Query{}, mkhash.PartialMatch{})
	if err != nil || ans.Buckets != 5 {
		t.Fatalf("healthy wrapped device: ans=%+v err=%v", ans, err)
	}
}

func TestReportCounters(t *testing.T) {
	in := NewInjector("rep", 1, map[int]Schedule{
		0: {Partition: true},
		2: {Latency: time.Microsecond},
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		in.Before(ctx, 0) //nolint:errcheck
	}
	in.Before(ctx, 2) //nolint:errcheck
	rep := in.Report()
	if rep.Name != "rep" || rep.Seed != 1 {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.Devices) != 2 || rep.Devices[0].Device != 0 || rep.Devices[1].Device != 2 {
		t.Fatalf("devices not sorted: %+v", rep.Devices)
	}
	if rep.Devices[0].Ops != 3 || rep.Devices[0].Injected != 3 {
		t.Errorf("device 0 counters: %+v", rep.Devices[0])
	}
	if rep.Devices[1].Delayed != 1 || rep.Devices[1].Injected != 0 {
		t.Errorf("device 2 counters: %+v", rep.Devices[1])
	}

	// The registry exposes the injector by name, latest wins.
	found := false
	for _, r := range ReportAll() {
		if r.Name == "rep" {
			found = true
		}
	}
	if !found {
		t.Fatal("ReportAll missing registered injector")
	}
}
