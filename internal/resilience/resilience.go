// Package resilience is the deterministic, seedable fault injector
// behind the chaos tests and the WithFaultInjection facade option:
// per-device schedules of injected errors, latency, hangs, flapping
// and partitions, applied at the engine Device seam (Wrap) or at the
// netdist coordinator's connection seam (Before, called before each
// round trip). Every random decision comes from a per-device rand
// seeded from the injector seed, and flapping is driven by a per-device
// operation counter — the same seed and operation order always produce
// the same fault sequence, which is what makes the chaos integration
// test assertable.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"fxdist/internal/engine"
	"fxdist/internal/mkhash"
	"fxdist/internal/query"
)

// ErrInjected marks a failure manufactured by the injector; match with
// errors.Is.
var ErrInjected = errors.New("resilience: injected fault")

// Schedule is one device's fault plan. Decision order per operation:
// Partition, then FlapEvery, then ErrorRate — the first that fires
// fails the operation immediately (no latency is charged); otherwise
// Latency+Jitter delay the operation, and Hang blocks it until the
// context dies.
type Schedule struct {
	// ErrorRate fails each operation with this probability (0..1).
	ErrorRate float64 `json:"error_rate,omitempty"`
	// Latency delays each operation by this much.
	Latency time.Duration `json:"latency,omitempty"`
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration `json:"jitter,omitempty"`
	// Hang blocks each operation until its context is cancelled.
	Hang bool `json:"hang,omitempty"`
	// Partition fails every operation (the device is unreachable).
	Partition bool `json:"partition,omitempty"`
	// FlapEvery alternates the device between alive and dead phases of
	// this many operations: with FlapEvery=N, operations 1..N succeed,
	// N+1..2N fail, and so on. 0 disables flapping.
	FlapEvery int `json:"flap_every,omitempty"`
}

// active reports whether the schedule injects anything.
func (s Schedule) active() bool {
	return s.ErrorRate > 0 || s.Latency > 0 || s.Jitter > 0 || s.Hang || s.Partition || s.FlapEvery > 0
}

// devState is one device's injection state.
type devState struct {
	sched    Schedule
	rng      *rand.Rand
	ops      uint64
	injected uint64
	delayed  uint64
}

// Injector applies per-device fault schedules deterministically. Safe
// for concurrent use; sleeps and hangs happen outside the lock.
type Injector struct {
	name string
	seed int64

	mu   sync.Mutex
	devs map[int]*devState
}

// NewInjector builds an injector named for its backend seam (the name
// keys the /debug/resilience report) with one schedule per device, and
// registers it for reporting. Each device draws from its own rand
// seeded with seed+device, so devices fault independently but
// reproducibly.
func NewInjector(name string, seed int64, schedules map[int]Schedule) *Injector {
	in := &Injector{name: name, seed: seed, devs: make(map[int]*devState)}
	for dev, s := range schedules {
		in.devs[dev] = &devState{sched: s, rng: rand.New(rand.NewSource(seed + int64(dev)))}
	}
	register(in)
	return in
}

// Name returns the injector's report name.
func (in *Injector) Name() string { return in.name }

// Set replaces dev's schedule at runtime (chaos tests flip devices
// between healthy and failing mid-workload). Operation counters keep
// counting across schedule changes.
func (in *Injector) Set(dev int, s Schedule) {
	in.mu.Lock()
	st := in.devs[dev]
	if st == nil {
		st = &devState{rng: rand.New(rand.NewSource(in.seed + int64(dev)))}
		in.devs[dev] = st
	}
	st.sched = s
	in.mu.Unlock()
}

// Clear removes dev's schedule (the device heals).
func (in *Injector) Clear(dev int) { in.Set(dev, Schedule{}) }

// Before applies dev's schedule to one operation: it returns an
// injected error, sleeps the scheduled latency (honoring ctx), or
// blocks for a Hang schedule until ctx dies. A nil error means the
// operation proceeds.
func (in *Injector) Before(ctx context.Context, dev int) error {
	in.mu.Lock()
	st := in.devs[dev]
	if st == nil || !st.sched.active() {
		in.mu.Unlock()
		return nil
	}
	st.ops++
	op := st.ops
	s := st.sched
	fail := s.Partition
	if !fail && s.FlapEvery > 0 {
		fail = ((op-1)/uint64(s.FlapEvery))%2 == 1
	}
	if !fail && s.ErrorRate > 0 {
		fail = st.rng.Float64() < s.ErrorRate
	}
	var delay time.Duration
	if !fail {
		delay = s.Latency
		if s.Jitter > 0 {
			delay += time.Duration(st.rng.Int63n(int64(s.Jitter)))
		}
	}
	if fail {
		st.injected++
	} else if delay > 0 || s.Hang {
		st.delayed++
	}
	in.mu.Unlock()

	if fail {
		return fmt.Errorf("device %d op %d: %w", dev, op, ErrInjected)
	}
	if s.Hang {
		<-ctx.Done()
		return ctx.Err()
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	return nil
}

// faultDevice injects faults in front of one engine Device: Before
// runs first and its verdict (error, delay, or hang) gates the inner
// scan.
type faultDevice struct {
	in  *Injector
	dev int
	d   engine.Device
}

func (f faultDevice) Scan(ctx context.Context, q query.Query, pm mkhash.PartialMatch) (engine.Answer, error) {
	if err := f.in.Before(ctx, f.dev); err != nil {
		return engine.Answer{}, err
	}
	return f.d.Scan(ctx, q, pm)
}

// Wrap returns devs with each device fronted by the injector — the
// engine-seam plug point for the storage backends.
func (in *Injector) Wrap(devs []engine.Device) []engine.Device {
	out := make([]engine.Device, len(devs))
	for i, d := range devs {
		out[i] = faultDevice{in: in, dev: i, d: d}
	}
	return out
}

// DeviceReport is one device's injection state in a Report.
type DeviceReport struct {
	Device   int      `json:"device"`
	Schedule Schedule `json:"schedule"`
	Ops      uint64   `json:"ops"`
	Injected uint64   `json:"injected_failures"`
	Delayed  uint64   `json:"delayed_ops"`
}

// Report is one injector's snapshot for /debug/resilience.
type Report struct {
	Name    string         `json:"name"`
	Seed    int64          `json:"seed"`
	Devices []DeviceReport `json:"devices"`
}

// Report snapshots the injector's per-device schedules and counters.
func (in *Injector) Report() Report {
	in.mu.Lock()
	defer in.mu.Unlock()
	rep := Report{Name: in.name, Seed: in.seed}
	devs := make([]int, 0, len(in.devs))
	for dev := range in.devs {
		devs = append(devs, dev)
	}
	sort.Ints(devs)
	for _, dev := range devs {
		st := in.devs[dev]
		rep.Devices = append(rep.Devices, DeviceReport{
			Device:   dev,
			Schedule: st.sched,
			Ops:      st.ops,
			Injected: st.injected,
			Delayed:  st.delayed,
		})
	}
	return rep
}

// Process-wide injector registry for /debug/resilience; latest
// injector under one name wins.
var (
	regMu     sync.Mutex
	injectors = make(map[string]*Injector)
)

func register(in *Injector) {
	regMu.Lock()
	injectors[in.name] = in
	regMu.Unlock()
}

// ReportAll snapshots every registered injector, sorted by name.
func ReportAll() []Report {
	regMu.Lock()
	all := make([]*Injector, 0, len(injectors))
	for _, in := range injectors {
		all = append(all, in)
	}
	regMu.Unlock()
	out := make([]Report, 0, len(all))
	for _, in := range all {
		out = append(out, in.Report())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
