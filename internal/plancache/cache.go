package plancache

import (
	"container/list"
	"sync"

	"fxdist/internal/obs"
)

// Key identifies one cached plan: the owning allocator's identity (so a
// rebuilt allocator — e.g. after a snapshot reload — never reuses stale
// plans) and the query shape.
type Key struct {
	Owner uint64
	Shape string
}

// Process-wide owner identity assignment. Identities are per pointer
// value: two allocators built from the same spec are still distinct
// owners, which is exactly the invalidation rule the cache needs.
var (
	idMu   sync.Mutex
	ids    = make(map[any]uint64)
	nextID uint64
)

// IdentityOf returns a process-unique identity for owner (an allocator,
// or the schema file for allocator-less backends), assigning one on
// first use.
func IdentityOf(owner any) uint64 {
	idMu.Lock()
	defer idMu.Unlock()
	if id, ok := ids[owner]; ok {
		return id
	}
	nextID++
	ids[owner] = nextID
	return nextID
}

// Defaults for New; see the corresponding Options.
const (
	DefaultCapacity  = 256
	DefaultMaxTuples = 1 << 16
	DefaultMaxBytes  = 64 << 20
)

// Option configures New.
type Option func(*Cache)

// WithCapacity bounds the number of cached plans (LRU-evicted beyond
// it). n <= 0 keeps the default.
func WithCapacity(n int) Option {
	return func(c *Cache) {
		if n > 0 {
			c.capacity = n
		}
	}
}

// WithMaxTuples caps the |R(q)| a single plan compiles tuple groups
// for; larger shapes cache only their summary numbers. n <= 0 keeps
// the default.
func WithMaxTuples(n int) Option {
	return func(c *Cache) {
		if n > 0 {
			c.maxTuples = n
		}
	}
}

// WithMaxBytes bounds the cache's approximate total plan footprint
// (LRU-evicted beyond it). n <= 0 keeps the default.
func WithMaxBytes(n int) Option {
	return func(c *Cache) {
		if n > 0 {
			c.maxBytes = n
		}
	}
}

// entry is one resident plan.
type entry struct {
	key  Key
	plan *Plan
}

// flight is one in-progress compilation; latecomers wait on wg and read
// plan/err, so concurrent misses of the same key compile exactly once.
type flight struct {
	wg   sync.WaitGroup
	plan *Plan
	err  error
}

// Cache is an LRU, singleflight-guarded plan cache for one cluster.
// Each cluster owns one (they are not shared across clusters), but all
// caches of one backend report under the same metric labels and appear
// individually on /debug/plancache.
type Cache struct {
	backend string

	mu        sync.Mutex
	enabled   bool
	capacity  int
	maxTuples int
	maxBytes  int
	lru       *list.List // of *entry, front = most recent
	index     map[Key]*list.Element
	flights   map[Key]*flight
	bytes     int
	hits      uint64
	misses    uint64
	evicted   uint64

	mHits, mMisses, mEvicted *obs.Counter
	mEntries, mBytes         *obs.Gauge
}

// New builds a plan cache reporting under the backend label ("memory",
// "durable", "replicated", "netdist") and registers it for
// /debug/plancache. Call Close when the owning cluster is discarded.
func New(backend string, opts ...Option) *Cache {
	r := obs.Default()
	bl := obs.L("cache", backend)
	c := &Cache{
		backend:   backend,
		enabled:   true,
		capacity:  DefaultCapacity,
		maxTuples: DefaultMaxTuples,
		maxBytes:  DefaultMaxBytes,
		lru:       list.New(),
		index:     make(map[Key]*list.Element),
		flights:   make(map[Key]*flight),
		mHits: r.Counter("fxdist_plancache_hit_total",
			"Plan-cache lookups served from a resident or in-flight plan.", bl),
		mMisses: r.Counter("fxdist_plancache_miss_total",
			"Plan-cache lookups that compiled a new plan.", bl),
		mEvicted: r.Counter("fxdist_plancache_eviction_total",
			"Plans evicted by the LRU capacity or byte bound.", bl),
		mEntries: r.Gauge("fxdist_plancache_size",
			"Resident plans, totalled over every live cache of the backend.", bl),
		mBytes: r.Gauge("fxdist_plancache_bytes",
			"Approximate resident plan bytes, totalled over every live cache of the backend.", bl),
	}
	for _, opt := range opts {
		opt(c)
	}
	register(c)
	return c
}

// Backend returns the backend label the cache reports under.
func (c *Cache) Backend() string { return c.backend }

// Enabled reports whether lookups hit the cache; a disabled cache makes
// the engine take the uncached (pre-cache) retrieval path.
func (c *Cache) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// SetEnabled toggles the cache. Disabling keeps resident plans (they
// become reachable again on re-enable).
func (c *Cache) SetEnabled(v bool) {
	c.mu.Lock()
	c.enabled = v
	c.mu.Unlock()
}

// MaxTuples returns the per-plan |R(q)| compilation cap.
func (c *Cache) MaxTuples() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxTuples
}

// Resize changes the LRU capacity, evicting immediately if shrinking.
func (c *Cache) Resize(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.capacity = n
	c.evictLocked()
	c.mu.Unlock()
}

// evictLocked drops LRU tails until the capacity and byte bounds hold.
func (c *Cache) evictLocked() {
	for c.lru.Len() > c.capacity || (c.bytes > c.maxBytes && c.lru.Len() > 1) {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.index, e.key)
		c.bytes -= e.plan.Bytes()
		c.evicted++
		c.mEvicted.Inc()
		c.mEntries.Add(-1)
		c.mBytes.Add(-float64(e.plan.Bytes()))
	}
}

// Get returns the plan for key, compiling it with compile on a miss.
// Concurrent misses of one key share a single compilation (latecomers
// count as hits: they did not pay for the compile). The second return
// reports whether the lookup was a hit. Compilation errors are not
// cached.
func (c *Cache) Get(key Key, compile func() (*Plan, error)) (*Plan, bool, error) {
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.lru.MoveToFront(el)
		p := el.Value.(*entry).plan
		c.hits++
		c.mu.Unlock()
		c.mHits.Inc()
		return p, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.hits++
		c.mu.Unlock()
		c.mHits.Inc()
		f.wg.Wait()
		return f.plan, true, f.err
	}
	f := &flight{}
	f.wg.Add(1)
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()
	c.mMisses.Inc()

	f.plan, f.err = compile()
	f.wg.Done()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		el := c.lru.PushFront(&entry{key: key, plan: f.plan})
		c.index[key] = el
		c.bytes += f.plan.Bytes()
		c.mEntries.Add(1)
		c.mBytes.Add(float64(f.plan.Bytes()))
		c.evictLocked()
	}
	c.mu.Unlock()
	return f.plan, false, f.err
}

// Close unregisters the cache from /debug/plancache and drops its
// resident plans. Subsequent Gets behave like a fresh (empty) cache.
func (c *Cache) Close() {
	c.mu.Lock()
	n := c.lru.Len()
	b := c.bytes
	c.lru.Init()
	c.index = make(map[Key]*list.Element)
	c.bytes = 0
	c.mu.Unlock()
	c.mEntries.Add(-float64(n))
	c.mBytes.Add(-float64(b))
	unregister(c)
}

// PlanInfo describes one resident plan on /debug/plancache.
type PlanInfo struct {
	Owner  uint64 `json:"owner"`
	Shape  string `json:"shape"`
	RQ     int    `json:"r_q"`
	M      int    `json:"m"`
	Bound  int    `json:"bound"`
	Ready  bool   `json:"ready"`
	Tuples int    `json:"tuples"`
	Bytes  int    `json:"bytes"`
}

// Snapshot is one cache's point-in-time state.
type Snapshot struct {
	Backend   string     `json:"backend"`
	Enabled   bool       `json:"enabled"`
	Capacity  int        `json:"capacity"`
	Entries   int        `json:"entries"`
	Bytes     int        `json:"bytes"`
	Hits      uint64     `json:"hits"`
	Misses    uint64     `json:"misses"`
	Evictions uint64     `json:"evictions"`
	HitRate   float64    `json:"hit_rate"`
	Plans     []PlanInfo `json:"plans"`
}

// Stats snapshots the cache, most recently used plan first.
func (c *Cache) Stats() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Backend:   c.backend,
		Enabled:   c.enabled,
		Capacity:  c.capacity,
		Entries:   c.lru.Len(),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicted,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		s.Plans = append(s.Plans, PlanInfo{
			Owner:  e.key.Owner,
			Shape:  e.key.Shape,
			RQ:     e.plan.RQ,
			M:      e.plan.M,
			Bound:  e.plan.Bound,
			Ready:  e.plan.Ready(),
			Tuples: e.plan.Tuples(),
			Bytes:  e.plan.Bytes(),
		})
	}
	return s
}
