// Package plancache compiles and caches per-shape retrieval plans.
//
// The engine executor's per-retrieval work — validation, |R(q)|, the
// strict-optimality bound ceil(|R(q)|/M), and each device's qualified-
// bucket enumeration — is almost entirely a function of the *query
// shape* (which fields are unspecified), not of the specified values.
// The paper's own §4–5 analysis is shape-based for exactly this reason.
// For a group allocator the device of a bucket factors as
//
//	device(b) = h · c_free      h = fold of the specified contributions,
//	                            c_free = fold of the free-field ones,
//
// so the free-field value tuples can be grouped by their folded
// contribution once per shape: device dev serves exactly the tuples in
// group h⁻¹ · dev, whatever values the query specifies. A Plan stores
// those groups; answering a concrete query is then a lookup plus a
// substitution walk, with no per-call recursion, reverse-index probing
// or re-validation.
//
// Plans are held in per-cluster Caches (LRU, singleflight-guarded),
// keyed by (allocator identity, shape) so a rebuilt allocator — e.g.
// after a snapshot reload — can never serve another allocator's plan.
// Cache traffic is mirrored into the obs metric registry and the
// /debug/plancache endpoint.
package plancache

import (
	"fxdist/internal/decluster"
	"fxdist/internal/query"
)

// Plan is one compiled retrieval plan for a (allocator, shape) pair.
// Plans are immutable after compilation and safe for concurrent use.
type Plan struct {
	// Shape is the query-shape key: 's' per specified field, '*' per
	// unspecified one.
	Shape string
	// Unspec lists the unspecified field indices in field order.
	Unspec []int
	// RQ is |R(q)|, the number of qualified buckets — identical for
	// every query of this shape.
	RQ int
	// M is the device count the plan was compiled for.
	M int
	// Bound is the paper's strict-optimality bound ceil(RQ/M).
	Bound int

	alloc decluster.GroupAllocator
	fs    decluster.FileSystem
	// solved is the field the device equation is solved for (the largest
	// unspecified field, matching InverseMapper), -1 when Unspec is empty.
	solved int
	// solvedSlot is solved's position within Unspec.
	solvedSlot int
	// tuples[g] flattens (len(Unspec)-wide) the free-field value tuples
	// whose folded contribution is g, in the exact order InverseMapper
	// enumerates them: rest fields row-major, solved-field preimages
	// ascending. nil on summary-only plans (no allocator, or RQ past the
	// compilation cap).
	tuples [][]int32
	// bytes approximates the plan's heap footprint, for cache accounting.
	bytes int
}

// bound returns ceil(rq/m), 0 for m <= 0.
func bound(rq, m int) int {
	if m <= 0 {
		return 0
	}
	return (rq + m - 1) / m
}

// Summary builds a tuple-less plan carrying only the shape-pure numbers
// (|R(q)| and the bound). The engine uses it for backends without an
// allocator (the TCP coordinator) and as the uncached fallback; devices
// seeing a summary plan fall back to their InverseMapper.
func Summary(q query.Query, rq, m int) *Plan {
	return &Plan{
		Shape:  q.Shape(),
		Unspec: q.UnspecifiedFields(),
		RQ:     rq,
		M:      m,
		Bound:  bound(rq, m),
		solved: -1,
		bytes:  64,
	}
}

// Compile builds the full plan for q's shape under alloc. When the
// shape's |R(q)| exceeds maxTuples (0 means no cap), the tuple groups
// are skipped and a summary plan is returned instead, so one enormous
// shape cannot blow up the cache.
func Compile(alloc decluster.GroupAllocator, q query.Query, maxTuples int) *Plan {
	fs := alloc.FileSystem()
	rq := q.NumQualified(fs)
	p := Summary(q, rq, fs.M)
	if maxTuples > 0 && rq > maxTuples {
		return p
	}
	p.alloc = alloc
	p.fs = fs
	k := len(p.Unspec)
	if k == 0 {
		p.tuples = make([][]int32, fs.M)
		return p
	}

	// Mirror InverseMapper's field split: solve for the (first) largest
	// unspecified field, enumerate the rest row-major. The enumeration
	// order inside each group must match EachOnDevice exactly so cached
	// and uncached retrievals return records in the same order.
	solvedSlot := 0
	for j, i := range p.Unspec {
		if fs.Sizes[i] > fs.Sizes[p.Unspec[solvedSlot]] {
			solvedSlot = j
		}
	}
	p.solved = p.Unspec[solvedSlot]
	p.solvedSlot = solvedSlot
	rest := make([]int, 0, k-1)
	restSlots := make([]int, 0, k-1)
	for j, i := range p.Unspec {
		if j != solvedSlot {
			rest = append(rest, i)
			restSlots = append(restSlots, j)
		}
	}

	g := alloc.Op()
	tuples := make([][]int32, fs.M)
	buf := make([]int32, k)
	var rec func(j, acc int)
	rec = func(j, acc int) {
		if j == len(rest) {
			for v := 0; v < fs.Sizes[p.solved]; v++ {
				buf[solvedSlot] = int32(v)
				c := g.Combine(acc, alloc.Contribution(p.solved, v), fs.M)
				tuples[c] = append(tuples[c], buf...)
			}
			return
		}
		i := rest[j]
		for v := 0; v < fs.Sizes[i]; v++ {
			buf[restSlots[j]] = int32(v)
			rec(j+1, g.Combine(acc, alloc.Contribution(i, v), fs.M))
		}
	}
	rec(0, 0)
	p.tuples = tuples
	p.bytes = 64 + 8*len(p.Unspec)
	for _, ts := range tuples {
		p.bytes += 24 + 4*len(ts)
	}
	return p
}

// Ready reports whether the plan carries compiled tuple groups — i.e.
// whether devices can enumerate from it instead of the InverseMapper.
func (p *Plan) Ready() bool { return p.tuples != nil }

// Bytes approximates the plan's heap footprint.
func (p *Plan) Bytes() int { return p.bytes }

// Tuples returns the total number of cached free-field tuples.
func (p *Plan) Tuples() int {
	if len(p.Unspec) == 0 {
		return 0
	}
	n := 0
	for _, ts := range p.tuples {
		n += len(ts) / len(p.Unspec)
	}
	return n
}

// residual returns the tuple group device dev serves for query q: with
// h the fold of q's specified contributions, dev = h · c_free, so
// c_free = h⁻¹ · dev.
func (p *Plan) residual(q query.Query, dev int) int {
	g := p.alloc.Op()
	h := 0
	for i, v := range q.Spec {
		if v != query.Unspecified {
			h = g.Combine(h, p.alloc.Contribution(i, v), p.fs.M)
		}
	}
	return g.Combine(g.Invert(h, p.fs.M), dev, p.fs.M)
}

// EachOnDevice calls fn for every bucket of R(q) on device dev, in the
// same order InverseMapper.EachOnDevice produces them. The slice passed
// to fn is reused; copy to retain. q must have the plan's shape and be
// in range (engine queries are, by construction from the schema).
func (p *Plan) EachOnDevice(q query.Query, dev int, fn func(bucket []int)) {
	c := p.residual(q, dev)
	b := make([]int, len(q.Spec))
	copy(b, q.Spec)
	k := len(p.Unspec)
	if k == 0 {
		// Fully specified query: the single qualified bucket lives on
		// device h, i.e. where the residual is the identity.
		if c == 0 {
			fn(b)
		}
		return
	}
	ts := p.tuples[c]
	for off := 0; off < len(ts); off += k {
		for j, i := range p.Unspec {
			b[i] = int(ts[off+j])
		}
		fn(b)
	}
}

// CountOnDevice returns r_dev(q) — the device's qualified-bucket count —
// without materialising buckets.
func (p *Plan) CountOnDevice(q query.Query, dev int) int {
	k := len(p.Unspec)
	if k == 0 {
		if p.residual(q, dev) == 0 {
			return 1
		}
		return 0
	}
	return len(p.tuples[p.residual(q, dev)]) / k
}
