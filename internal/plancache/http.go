package plancache

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"fxdist/internal/obs"
)

// Process-wide registry of live caches, for /debug/plancache and the
// facade's PlanCacheReport.
var (
	regMu  sync.Mutex
	caches []*Cache
)

func register(c *Cache) {
	regMu.Lock()
	caches = append(caches, c)
	regMu.Unlock()
}

func unregister(c *Cache) {
	regMu.Lock()
	for i, o := range caches {
		if o == c {
			caches = append(caches[:i], caches[i+1:]...)
			break
		}
	}
	regMu.Unlock()
}

// Report snapshots every live cache, sorted by backend (stable across
// same-backend caches: registration order).
func Report() []Snapshot {
	regMu.Lock()
	all := make([]*Cache, len(caches))
	copy(all, caches)
	regMu.Unlock()
	out := make([]Snapshot, 0, len(all))
	for _, c := range all {
		out = append(out, c.Stats())
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

func init() {
	obs.RegisterDebugHandler("/debug/plancache", "compiled-plan LRU per backend: hit/miss/eviction counts, entries, bytes", obs.DebugEndpoint(
		func() (any, error) { return Report(), nil },
		func(w io.Writer, doc any) { writeText(w, doc.([]Snapshot)) },
	))
}

func writeText(w io.Writer, snaps []Snapshot) {
	if len(snaps) == 0 {
		fmt.Fprintln(w, "no plan caches registered")
		return
	}
	for _, s := range snaps {
		state := "enabled"
		if !s.Enabled {
			state = "disabled"
		}
		fmt.Fprintf(w, "cache %s (%s) entries=%d/%d bytes=%d hits=%d misses=%d evictions=%d hit-rate=%.3f\n",
			s.Backend, state, s.Entries, s.Capacity, s.Bytes, s.Hits, s.Misses, s.Evictions, s.HitRate)
		for _, p := range s.Plans {
			fmt.Fprintf(w, "  %+v\n", p)
		}
	}
}
