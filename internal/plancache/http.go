package plancache

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"

	"fxdist/internal/obs"
)

// Process-wide registry of live caches, for /debug/plancache and the
// facade's PlanCacheReport.
var (
	regMu  sync.Mutex
	caches []*Cache
)

func register(c *Cache) {
	regMu.Lock()
	caches = append(caches, c)
	regMu.Unlock()
}

func unregister(c *Cache) {
	regMu.Lock()
	for i, o := range caches {
		if o == c {
			caches = append(caches[:i], caches[i+1:]...)
			break
		}
	}
	regMu.Unlock()
}

// Report snapshots every live cache, sorted by backend (stable across
// same-backend caches: registration order).
func Report() []Snapshot {
	regMu.Lock()
	all := make([]*Cache, len(caches))
	copy(all, caches)
	regMu.Unlock()
	out := make([]Snapshot, 0, len(all))
	for _, c := range all {
		out = append(out, c.Stats())
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Backend < out[j].Backend })
	return out
}

func init() {
	obs.RegisterDebugHandler("/debug/plancache", http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(Report()) //nolint:errcheck
		}))
}
