package plancache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"fxdist/internal/decluster"
	"fxdist/internal/query"
)

func mustFS(t *testing.T, sizes []int, m int) decluster.FileSystem {
	t.Helper()
	fs, err := decluster.NewFileSystem(sizes, m)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// allAllocators builds one allocator of each group kind over fs.
func allAllocators(t *testing.T, fs decluster.FileSystem) []decluster.GroupAllocator {
	t.Helper()
	fx, err := decluster.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	gdm, err := decluster.NewGDM(fs, []int{3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	return []decluster.GroupAllocator{fx, decluster.NewModulo(fs), gdm}
}

// eachShapeQuery calls fn with one representative query per shape (the
// specified values vary so substitution is exercised).
func eachShapeQuery(fs decluster.FileSystem, fn func(q query.Query)) {
	n := fs.NumFields()
	for mask := 0; mask < 1<<n; mask++ {
		spec := make([]int, n)
		for i := range spec {
			if mask&(1<<i) != 0 {
				spec[i] = query.Unspecified
			} else {
				spec[i] = (mask + i) % fs.Sizes[i]
			}
		}
		fn(query.New(spec))
	}
}

// TestPlanMatchesInverseMapper is the core soundness check: for every
// allocator kind, shape and device, the compiled plan enumerates exactly
// the buckets the InverseMapper does, in the same order.
func TestPlanMatchesInverseMapper(t *testing.T) {
	fs := mustFS(t, []int{8, 4, 2}, 8)
	for _, alloc := range allAllocators(t, fs) {
		im := query.NewInverseMapper(alloc)
		eachShapeQuery(fs, func(q query.Query) {
			p := Compile(alloc, q, 0)
			if !p.Ready() {
				t.Fatalf("%s %s: plan not ready", alloc.Name(), q)
			}
			if want := q.NumQualified(fs); p.RQ != want {
				t.Errorf("%s %s: RQ = %d, want %d", alloc.Name(), q, p.RQ, want)
			}
			total := 0
			for dev := 0; dev < fs.M; dev++ {
				var got, want [][]int
				p.EachOnDevice(q, dev, func(b []int) {
					got = append(got, append([]int(nil), b...))
				})
				im.EachOnDevice(q, dev, func(b []int) {
					want = append(want, append([]int(nil), b...))
				})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s %s dev %d: plan buckets %v, inverse mapper %v",
						alloc.Name(), q, dev, got, want)
				}
				if n := p.CountOnDevice(q, dev); n != len(want) {
					t.Errorf("%s %s dev %d: count %d, want %d", alloc.Name(), q, dev, n, len(want))
				}
				total += len(got)
			}
			if total != p.RQ {
				t.Errorf("%s %s: devices enumerate %d buckets, |R(q)| = %d",
					alloc.Name(), q, total, p.RQ)
			}
		})
	}
}

// TestCompileMaxTuples: shapes past the cap compile to summary-only
// plans that still carry the audit numbers.
func TestCompileMaxTuples(t *testing.T) {
	fs := mustFS(t, []int{8, 8}, 4)
	fx, err := decluster.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	q := query.New([]int{query.Unspecified, query.Unspecified})
	p := Compile(fx, q, 16) // |R(q)| = 64 > 16
	if p.Ready() {
		t.Error("plan over the tuple cap should not carry tuples")
	}
	if p.RQ != 64 || p.Bound != 16 {
		t.Errorf("summary plan RQ=%d bound=%d, want 64, 16", p.RQ, p.Bound)
	}
}

func TestSummaryPlan(t *testing.T) {
	q := query.New([]int{3, query.Unspecified})
	p := Summary(q, 40, 16)
	if p.Ready() {
		t.Error("summary plan reports Ready")
	}
	if p.Shape != "s*" || p.RQ != 40 || p.Bound != 3 {
		t.Errorf("summary = %+v", p)
	}
}

func TestIdentityDistinguishesRebuiltAllocators(t *testing.T) {
	fs := mustFS(t, []int{4, 4}, 4)
	a1, _ := decluster.NewFX(fs)
	a2, _ := decluster.NewFX(fs)
	if IdentityOf(a1) == IdentityOf(a2) {
		t.Error("two allocator instances share an identity")
	}
	if IdentityOf(a1) != IdentityOf(a1) {
		t.Error("identity not stable")
	}
}

func TestCacheLRUAndStats(t *testing.T) {
	fs := mustFS(t, []int{4, 4}, 4)
	fx, _ := decluster.NewFX(fs)
	c := New("memory", WithCapacity(2))
	defer c.Close()
	owner := IdentityOf(fx)

	compileShape := func(shape string, q query.Query) *Plan {
		p, _, err := c.Get(Key{Owner: owner, Shape: shape}, func() (*Plan, error) {
			return Compile(fx, q, 0), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	qA := query.New([]int{query.Unspecified, 1})
	qB := query.New([]int{1, query.Unspecified})
	qC := query.New([]int{query.Unspecified, query.Unspecified})

	pA := compileShape("*s", qA)
	if p2 := compileShape("*s", qA); p2 != pA {
		t.Error("second lookup did not return the cached plan")
	}
	compileShape("s*", qB)
	compileShape("**", qC) // evicts "*s" (LRU: "*s" was touched last at lookup 2... )

	s := c.Stats()
	if s.Entries != 2 {
		t.Errorf("entries = %d, want 2", s.Entries)
	}
	if s.Hits != 1 || s.Misses != 3 {
		t.Errorf("hits=%d misses=%d, want 1, 3", s.Hits, s.Misses)
	}
	if s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	if s.HitRate <= 0 || s.HitRate >= 1 {
		t.Errorf("hit rate = %v", s.HitRate)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := New("memory")
	defer c.Close()
	var compiles int
	gate := make(chan struct{})
	key := Key{Owner: 1, Shape: "s*"}
	q := query.New([]int{0, query.Unspecified})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.Get(key, func() (*Plan, error) {
				compiles++ // guarded by singleflight: only one caller runs this
				<-gate
				return Summary(q, 4, 4), nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	// Let the flight leader block in compile while the rest pile up, then
	// release everyone.
	for {
		c.mu.Lock()
		n := len(c.flights)
		c.mu.Unlock()
		if n == 1 {
			break
		}
	}
	close(gate)
	wg.Wait()
	if compiles != 1 {
		t.Errorf("compile ran %d times, want 1", compiles)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 7 {
		t.Errorf("hits=%d misses=%d, want 7, 1", s.Hits, s.Misses)
	}
}

func TestCacheCompileErrorNotCached(t *testing.T) {
	c := New("memory")
	defer c.Close()
	key := Key{Owner: 9, Shape: "ss"}
	fails := 0
	for i := 0; i < 2; i++ {
		_, _, err := c.Get(key, func() (*Plan, error) {
			fails++
			return nil, fmt.Errorf("boom %d", fails)
		})
		if err == nil {
			t.Fatal("expected compile error")
		}
	}
	if fails != 2 {
		t.Errorf("failed compile ran %d times, want 2 (errors are not cached)", fails)
	}
}

func TestReportAndResize(t *testing.T) {
	c := New("durable", WithCapacity(4))
	defer c.Close()
	fs := mustFS(t, []int{4, 4}, 4)
	fx, _ := decluster.NewFX(fs)
	owner := IdentityOf(fx)
	shapes := []query.Query{
		query.New([]int{query.Unspecified, 0}),
		query.New([]int{0, query.Unspecified}),
		query.New([]int{query.Unspecified, query.Unspecified}),
	}
	for _, q := range shapes {
		q := q
		c.Get(Key{Owner: owner, Shape: q.Shape()}, func() (*Plan, error) { //nolint:errcheck
			return Compile(fx, q, 0), nil
		})
	}
	found := false
	for _, s := range Report() {
		if s.Backend == "durable" && s.Entries == 3 {
			found = true
			if len(s.Plans) != 3 {
				t.Errorf("snapshot lists %d plans, want 3", len(s.Plans))
			}
		}
	}
	if !found {
		t.Error("Report does not include the durable cache with 3 entries")
	}
	c.Resize(1)
	if s := c.Stats(); s.Entries != 1 || s.Evictions != 2 {
		t.Errorf("after Resize(1): entries=%d evictions=%d, want 1, 2", s.Entries, s.Evictions)
	}
}
