//lint:file-ignore SA1019 this file deliberately exercises the deprecated constructors
package fxdist_test

import (
	"testing"

	"fxdist"
)

// The deprecated constructors must keep working exactly as before the
// Open redesign: each wrapper builds the same backend Open would and
// answers queries identically. This file is the only in-repo caller of
// the deprecated surface (CI enforces that).
func TestDeprecatedConstructorsStillWork(t *testing.T) {
	file := buildTestFile(t)
	fs, err := file.FileSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := file.Spec(map[string]string{"b": "b-4"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := file.Search(pm)
	if err != nil {
		t.Fatal(err)
	}
	assertHits := func(name string, records []fxdist.Record, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(records) != len(want) {
			t.Errorf("%s: %d records, want %d", name, len(records), len(want))
		}
	}

	mem, err := fxdist.NewCluster(file, fx, fxdist.MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mem.Retrieve(pm)
	assertHits("NewCluster", res.Records, err)

	repl, err := fxdist.NewReplicatedCluster(file, fx, fxdist.ChainedFailover, fxdist.MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	res, err = repl.Retrieve(pm)
	assertHits("NewReplicatedCluster", res.Records, err)

	dir := t.TempDir()
	dur, err := fxdist.CreateDurableCluster(dir, file, fx, fxdist.MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	res, err = dur.Retrieve(pm)
	assertHits("CreateDurableCluster", res.Records, err)
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := fxdist.OpenDurableCluster(dir, fxdist.MainMemory)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	res, err = reopened.Retrieve(pm)
	assertHits("OpenDurableCluster", res.Records, err)

	addrs, stop, err := fxdist.DeployLocal(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	coord, err := fxdist.DialCluster(file, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	dres, err := coord.Retrieve(pm)
	assertHits("DialCluster", dres.Records, err)
}
