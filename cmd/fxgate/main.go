// Command fxgate is the cluster's multi-tenant front door: a
// persistent-connection JSON-RPC 2.0 gateway (see package client for
// the wire contract) in front of either an in-process cluster built
// from a snapshot or a netdist coordinator over fxnode device servers.
//
// Usage:
//
//	# in-process backend straight from a snapshot
//	fxgate -snapshot cars.snap -tenants tenants.json -listen 127.0.0.1:8080
//
//	# distributed backend: coordinator over fxnode device servers
//	fxgate -snapshot cars.snap -addrs 127.0.0.1:9000,127.0.0.1:9001 \
//	       -tenants tenants.json -listen 127.0.0.1:8080
//
//	curl -s 127.0.0.1:8080/rpc -H 'Authorization: Bearer demo-key' \
//	  -d '{"jsonrpc":"2.0","id":1,"method":"fx.retrieve","params":{"query":{"make":"ford"}}}'
//
// tenants.json is a JSON array of tenant objects:
//
//	[{"name":"demo","api_key":"demo-key","rate_per_sec":100,"burst":200,"max_in_flight":32}]
//
// The gate's own telemetry lives beside the cluster's: /debug/tenants
// (per-tenant admission counters and shape slices), fxgate_* series on
// /metrics, and the tenant dimension on /debug/events wide events.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fxdist"
	"fxdist/internal/gate"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fxgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fxgate", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "RPC listen address (POST /rpc)")
	snapshot := fs.String("snapshot", "", "snapshot file: schema, records and allocator spec")
	addrsArg := fs.String("addrs", "", "comma-separated fxnode device addresses; empty serves the snapshot in process")
	tenantsPath := fs.String("tenants", "", "tenants config: JSON array of {name, api_key, rate_per_sec, burst, max_in_flight}")
	coalesce := fs.Duration("coalesce", time.Millisecond, "coalescing window: how long a retrieve waits for shape-mates (negative disables)")
	maxBatch := fs.Int("max-batch", 64, "largest coalesced dispatch")
	shedInflight := fs.Int("shed-inflight", 0, "shed requests beyond this many in flight gate-wide with 429/Retry-After (0 disables)")
	shedRetryAfter := fs.Duration("shed-retry-after", 500*time.Millisecond, "Retry-After hint for front-door sheds")
	burnShed := fs.Float64("burn-shed", 0, "SLO burn rate at which a query shape is refused admission (0 disables; needs -slo)")
	burnRetryAfter := fs.Duration("burn-retry-after", time.Second, "Retry-After hint for burn sheds")
	slo := fs.Duration("slo", 0, "latency objective per query shape (0 disables SLO tracking)")
	sloGoal := fs.Float64("slo-goal", 0.99, "fraction of queries that must meet -slo")
	metricsAddr := fs.String("metrics-addr", "", "also serve the observability endpoints on this separate address")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error, off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapshot == "" || *tenantsPath == "" {
		return errors.New("missing -snapshot or -tenants")
	}
	if err := fxdist.SetLogLevel(*logLevel); err != nil {
		return err
	}
	tenants, err := gate.LoadTenants(*tenantsPath)
	if err != nil {
		return err
	}
	file, alloc, err := fxdist.LoadSnapshotFile(*snapshot)
	if err != nil {
		return err
	}
	var opts []fxdist.Option
	if *slo > 0 {
		opts = append(opts, fxdist.WithLatencySLO(*slo, *sloGoal))
	}
	var cfg fxdist.Config
	if *addrsArg != "" {
		cfg = fxdist.Config{File: file, Addrs: strings.Split(*addrsArg, ",")}
	} else {
		if alloc == nil {
			return errors.New("snapshot carries no allocator spec (needed for the in-process backend)")
		}
		cfg = fxdist.Config{File: file, Allocator: alloc}
	}
	cluster, err := fxdist.Open(cfg, opts...)
	if err != nil {
		return err
	}
	defer cluster.Close()

	g, err := gate.New(gate.Config{
		Cluster:           cluster,
		File:              file,
		Allocator:         alloc,
		Tenants:           tenants,
		CoalesceWindow:    *coalesce,
		MaxBatch:          *maxBatch,
		MaxInFlight:       *shedInflight,
		ShedRetryAfter:    *shedRetryAfter,
		BurnShedThreshold: *burnShed,
		BurnRetryAfter:    *burnRetryAfter,
	})
	if err != nil {
		return err
	}
	defer g.Close()

	if *metricsAddr != "" {
		addr, stop, err := fxdist.ServeMetrics(*metricsAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("fxgate: observability on http://%s/metrics — endpoint index at http://%s/debug/\n", addr, addr)
	}

	// One port serves everything: the RPC endpoint plus the shared
	// observability surface (which now includes /debug/tenants).
	mux := http.NewServeMux()
	mux.Handle("/rpc", g)
	mux.Handle("/metrics", fxdist.MetricsHandler())
	mux.Handle("/debug/", fxdist.MetricsHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux}
	fmt.Printf("fxgate: serving %d tenants on http://%s/rpc (backend %s, window %v, max batch %d)\n",
		len(tenants), l.Addr(), cluster.Kind(), *coalesce, *maxBatch)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		fmt.Println("fxgate: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best-effort drain before exit
	}()
	if err := srv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
