package main

import (
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fxdist"
)

func TestDebugBase(t *testing.T) {
	for in, want := range map[string]string{
		"127.0.0.1:9100":         "http://127.0.0.1:9100",
		"http://localhost:9100":  "http://localhost:9100",
		"http://localhost:9100/": "http://localhost:9100",
	} {
		if got := debugBase(in); got != want {
			t.Errorf("debugBase(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRescaleDebugHelpers drives the status/steer HTTP helpers against a
// server speaking the /debug/rescale contract.
func TestRescaleDebugHelpers(t *testing.T) {
	var gotForm url.Values
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/rescale" {
			http.NotFound(w, r)
			return
		}
		switch r.Method {
		case http.MethodGet:
			w.Write([]byte(`{"rescales":{"netdist-next":{"phase":"dual-read"}}}`))
		case http.MethodPost:
			if err := r.ParseForm(); err != nil {
				t.Error(err)
			}
			gotForm = r.PostForm
			if gotForm.Get("action") == "explode" {
				http.Error(w, "unknown action", http.StatusBadRequest)
				return
			}
			w.Write([]byte(gotForm.Get("action") + ": ok\n"))
		}
	}))
	defer srv.Close()

	base := debugBase(strings.TrimPrefix(srv.URL, "http://"))
	body, err := rescaleDebugGet(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "dual-read") {
		t.Fatalf("status body %q missing phase", body)
	}

	body, err = rescaleDebugPost(base, "pause", "netdist-next")
	if err != nil {
		t.Fatal(err)
	}
	if body != "pause: ok\n" {
		t.Fatalf("pause response %q", body)
	}
	if gotForm.Get("action") != "pause" || gotForm.Get("name") != "netdist-next" {
		t.Fatalf("server saw form %v", gotForm)
	}

	if _, err := rescaleDebugPost(base, "explode", ""); err == nil {
		t.Fatal("bad action did not surface the HTTP error")
	}
}

func buildRescaleCLIFile(t *testing.T) (*fxdist.File, fxdist.RecordSpec) {
	t.Helper()
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "a", Cardinality: 80},
		{Name: "b", Cardinality: 30},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	records, err := fxdist.GenerateRecords(spec, 600, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := file.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return file, spec
}

// TestSampleQueries: every sampled self-check query must have a
// non-empty reference answer — they come from records actually stored.
func TestSampleQueries(t *testing.T) {
	file, _ := buildRescaleCLIFile(t)
	pms := sampleQueries(file, 6)
	if len(pms) == 0 {
		t.Fatal("no queries sampled from a populated file")
	}
	for i, pm := range pms {
		recs, err := file.Search(pm)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(recs) == 0 {
			t.Fatalf("query %d matches nothing despite being sampled from a record", i)
		}
	}
}

// TestStartRescaleEndToEnd runs the CLI driver path against a real
// loopback deployment: snapshot on disk, live old servers, empty
// rescale targets, then startRescale exactly as `fxnode rescale` would.
func TestStartRescaleEndToEnd(t *testing.T) {
	file, _ := buildRescaleCLIFile(t)
	fs, err := file.FileSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "file.snap")
	if err := fxdist.SaveSnapshotFile(snap, file, fx); err != nil {
		t.Fatal(err)
	}
	addrs, stopOld, err := fxdist.DeployLocal(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stopOld()

	aspec, err := fxdist.DescribeAllocator(fx)
	if err != nil {
		t.Fatal(err)
	}
	newSpec, err := aspec.Rescaled(4)
	if err != nil {
		t.Fatal(err)
	}
	newAddrs := append([]string(nil), addrs...)
	for dev := 2; dev < 4; dev++ {
		srv, err := fxdist.NewRescaleTargetServer(dev, newSpec, 1)
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		newAddrs = append(newAddrs, l.Addr().String())
		go srv.Serve(l) //nolint:errcheck // ends when srv.Close closes l
	}

	err = startRescale(rescaleStartConfig{
		snapshot:     snap,
		addrs:        strings.Join(addrs, ","),
		newAddrs:     strings.Join(newAddrs, ","),
		newM:         4,
		journal:      filepath.Join(dir, "rescale.journal"),
		guardQueries: 2,
		selfCheck:    true,
		statusEvery:  25 * time.Millisecond,
		timeout:      60 * time.Second,
		logLevel:     "off",
	})
	if err != nil {
		t.Fatalf("startRescale: %v", err)
	}
}
