// Command fxnode runs the distributed deployment pieces from the shell:
// serve one device's partition of a snapshotted file over TCP, or act as
// the coordinator and query a set of device servers.
//
// Usage:
//
//	# window 0..M-1: one server per device, all from the same snapshot
//	fxnode serve -snapshot cars.snap -device 0 -listen 127.0.0.1:9000
//	fxnode serve -snapshot cars.snap -device 1 -listen 127.0.0.1:9001
//	...
//
//	# coordinator: schema comes from the same snapshot
//	fxnode query -snapshot cars.snap -addrs 127.0.0.1:9000,127.0.0.1:9001 make=ford
//
// The rescale subcommand grows or shrinks a live deployment with zero
// downtime. Growing M -> 2M, first start the joining devices as empty
// rescale targets, then drive the migration:
//
//	fxnode serve -snapshot cars.snap -device 2 -rescale-target 4 -listen 127.0.0.1:9002
//	fxnode serve -snapshot cars.snap -device 3 -rescale-target 4 -listen 127.0.0.1:9003
//	fxnode rescale -snapshot cars.snap -addrs 127.0.0.1:9000,127.0.0.1:9001 \
//	    -new-m 4 -new-addrs 127.0.0.1:9000,...,127.0.0.1:9003 \
//	    -journal cars.rescale -metrics-addr 127.0.0.1:9100
//
// Shrinking halves the list instead (-new-m 1; -new-addrs defaults to a
// prefix of -addrs). While a rescale runs, a second fxnode steers it
// through the coordinator's debug address:
//
//	fxnode rescale -action status -debug 127.0.0.1:9100
//	fxnode rescale -action pause  -debug 127.0.0.1:9100
//
// Both subcommands accept -metrics-addr to expose the observability
// endpoints (/metrics Prometheus text, /debug/vars JSON, /debug/traces
// recent query spans, /debug/pprof/ runtime profiles):
//
//	fxnode serve -snapshot cars.snap -device 0 -listen 127.0.0.1:9000 -metrics-addr 127.0.0.1:9100
//	curl -s 127.0.0.1:9100/metrics | grep fxdist_netdist_server
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fxdist"
	"fxdist/internal/cliutil"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: fxnode {serve|query|rescale} [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "rescale":
		err = runRescale(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxnode:", err)
		os.Exit(1)
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	snapshot := fs.String("snapshot", "", "snapshot file (with allocator spec)")
	device := fs.Int("device", 0, "device id this node serves")
	listen := fs.String("listen", "127.0.0.1:0", "listen address")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/traces and /debug/pprof/ on this address")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error, off")
	shedInflight := fs.Int("shed-inflight", 0, "shed requests beyond this many in flight with a retryable busy response (0 disables)")
	shedRetryAfter := fs.Duration("shed-retry-after", 250*time.Millisecond, "retry-after hint attached to shed responses")
	rescaleTarget := fs.Int("rescale-target", 0, "serve an empty rescale-target device for a cluster growing to this many devices (0 serves the snapshot's own layout)")
	epoch := fs.Int("epoch", 1, "epoch a rescale target starts at: the growing cluster's current epoch + 1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapshot == "" {
		return fmt.Errorf("missing -snapshot")
	}
	if err := fxdist.SetLogLevel(*logLevel); err != nil {
		return err
	}
	if *metricsAddr != "" {
		addr, stop, err := fxdist.ServeMetrics(*metricsAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("fxnode: observability on http://%s/metrics — endpoint index at http://%s/debug/\n", addr, addr)
	}
	file, alloc, err := fxdist.LoadSnapshotFile(*snapshot)
	if err != nil {
		return err
	}
	if alloc == nil {
		return fmt.Errorf("snapshot carries no allocator spec")
	}
	spec, err := fxdist.DescribeAllocator(alloc)
	if err != nil {
		return err
	}
	var srv *fxdist.DeviceServer
	var banner string
	if *rescaleTarget > 0 {
		// A rescale target holds no buckets yet: it joins a growing
		// cluster at the next epoch and receives its partition from the
		// migration stream.
		newSpec, err := spec.Rescaled(*rescaleTarget)
		if err != nil {
			return err
		}
		if *device < 0 || *device >= newSpec.M {
			return fmt.Errorf("device %d out of range [0,%d)", *device, newSpec.M)
		}
		srv, err = fxdist.NewRescaleTargetServer(*device, newSpec, *epoch)
		if err != nil {
			return err
		}
		banner = fmt.Sprintf("serving rescale-target device %d of %d (epoch %d, empty)", *device, newSpec.M, *epoch)
	} else {
		parts, err := fxdist.PartitionFile(file, alloc)
		if err != nil {
			return err
		}
		if *device < 0 || *device >= len(parts) {
			return fmt.Errorf("device %d out of range [0,%d)", *device, len(parts))
		}
		srv, err = fxdist.NewDeviceServer(*device, spec, parts[*device])
		if err != nil {
			return err
		}
		banner = fmt.Sprintf("serving device %d (%d buckets) of %s", *device, len(parts[*device]), alloc.Name())
	}
	if *shedInflight > 0 {
		srv.SetShedding(*shedInflight, *shedRetryAfter)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("fxnode: %s on %s\n", banner, l.Addr())
	// Serve blocks until the listener closes. A SIGINT/SIGTERM closes the
	// server so Serve returns cleanly and the deferred metrics shutdown
	// actually runs (instead of the process dying mid-request with the
	// observability listener still bound).
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		fmt.Println("fxnode: shutting down")
		srv.Close()
	}()
	return srv.Serve(l)
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	snapshot := fs.String("snapshot", "", "snapshot file (schema source)")
	addrsArg := fs.String("addrs", "", "comma-separated device addresses, in device order")
	epoch := fs.Int("epoch", 0, "serving epoch of the fleet: advances by one per completed rescale (0 matches a never-rescaled fleet)")
	timeout := fs.Duration("timeout", 0, "overall retrieval deadline (0 waits indefinitely)")
	statsPull := fs.Duration("stats-pull", 0, "pull every device server's metrics snapshot at this interval into the /debug/cluster fleet view (0 pulls once)")
	slo := fs.Duration("slo", 0, "latency objective per query shape (0 disables SLO tracking)")
	sloGoal := fs.Float64("slo-goal", 0.99, "fraction of queries that must meet -slo")
	profileDir := fs.String("profile-dir", "", "spool triggered pprof captures into this directory (enables triggered profiling)")
	profileBurn := fs.Float64("profile-burn", 0, "SLO burn rate that triggers a pprof capture (0 disables the burn trigger)")
	profileLatency := fs.Duration("profile-latency", 0, "single-query latency that triggers a pprof capture (0 disables the latency trigger)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/traces, /debug/optimality, /debug/hotpath, /debug/flight, /debug/profiles and /debug/pprof/ on this address")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error, off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapshot == "" || *addrsArg == "" {
		return fmt.Errorf("missing -snapshot or -addrs")
	}
	if err := fxdist.SetLogLevel(*logLevel); err != nil {
		return err
	}
	if *metricsAddr != "" {
		addr, stop, err := fxdist.ServeMetrics(*metricsAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("fxnode: observability on http://%s/metrics — endpoint index at http://%s/debug/\n", addr, addr)
	}
	file, _, err := fxdist.LoadSnapshotFile(*snapshot)
	if err != nil {
		return err
	}
	spec, err := cliutil.ParseTerms(fs.Args())
	if err != nil {
		return err
	}
	pm, err := file.Spec(spec)
	if err != nil {
		return err
	}
	var opts []fxdist.Option
	if *epoch > 0 {
		opts = append(opts, fxdist.WithDialEpoch(*epoch))
	}
	if *slo > 0 {
		opts = append(opts, fxdist.WithLatencySLO(*slo, *sloGoal))
	}
	if *profileDir != "" || *profileBurn > 0 || *profileLatency > 0 {
		fxdist.EnableTriggeredProfiling(fxdist.TriggeredProfilingConfig{
			Dir:              *profileDir,
			BurnThreshold:    *profileBurn,
			LatencyThreshold: *profileLatency,
		})
		defer func() {
			for _, cap := range fxdist.DisableTriggeredProfiling() {
				if cap.Err != "" {
					fmt.Printf("profile capture %s/%s (%s): %s\n", cap.Backend, cap.Shape, cap.Reason, cap.Err)
					continue
				}
				fmt.Printf("profile capture %s/%s (%s): %s %s\n",
					cap.Backend, cap.Shape, cap.Reason, cap.CPUFile, cap.HeapFile)
			}
		}()
	}
	if *statsPull > 0 {
		opts = append(opts, fxdist.WithStatsPull(*statsPull))
	}
	coord, err := fxdist.Open(fxdist.Config{File: file, Addrs: strings.Split(*addrsArg, ",")}, opts...)
	if err != nil {
		return err
	}
	defer coord.Close()
	// A signal cancels the retrieval instead of killing the process, so
	// the deferred metrics and coordinator shutdowns run.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	ctx := sigCtx
	if *statsPull == 0 {
		// One synchronous pull populates /debug/cluster for this process's
		// lifetime even without a refresh loop.
		coord.Coordinator().PullStats(ctx) //nolint:errcheck // failures land in the federator
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := coord.RetrieveContext(ctx, pm)
	if err != nil {
		var terr *fxdist.TracedError
		if errors.As(err, &terr) {
			if ctx.Err() != nil {
				return fmt.Errorf("%w [deadline %v exceeded; join trace %d against /debug/traces]", err, *timeout, terr.TraceID)
			}
			return fmt.Errorf("%w [join trace %d against /debug/traces]", err, terr.TraceID)
		}
		return err
	}
	fmt.Printf("%d matching records; buckets/device %v; largest %d; trace %d\n",
		len(res.Records), res.DeviceBuckets, res.LargestResponseSize, res.TraceID)
	for i, r := range res.Records {
		if i == 20 {
			fmt.Printf("... and %d more\n", len(res.Records)-20)
			break
		}
		fmt.Println(" ", strings.Join(r, ", "))
	}
	printAudit()
	if *statsPull > 0 {
		// The refresh loop makes this process the fleet view: keep it
		// (and its /debug/cluster endpoint) alive for fxtop until a
		// signal, rather than exiting after one query.
		fmt.Printf("fxnode: pulling device stats every %v; Ctrl-C to exit\n", *statsPull)
		<-sigCtx.Done()
	}
	return nil
}

func runRescale(args []string) error {
	fs := flag.NewFlagSet("rescale", flag.ContinueOnError)
	action := fs.String("action", "start", "start | status | pause | resume | abort")
	snapshot := fs.String("snapshot", "", "snapshot file (with allocator spec); start only")
	addrsArg := fs.String("addrs", "", "current device addresses, in device order; start only")
	newAddrsArg := fs.String("new-addrs", "", "post-rescale addresses, in device order (growing: current list plus the rescale-target servers; shrinking: defaults to a prefix of -addrs)")
	newM := fs.Int("new-m", 0, "post-rescale device count: double or half the current M")
	journal := fs.String("journal", "", "crash-safe migration journal; rerunning with the same path resumes instead of restarting")
	concurrency := fs.Int("concurrency", 0, "in-flight bucket copies (0 uses the driver default)")
	guardQueries := fs.Uint64("guard-queries", 0, "audited new-epoch queries the cutover guard requires (0 uses the default)")
	noGuard := fs.Bool("no-guard", false, "cut over without waiting on the optimality auditor")
	selfCheck := fs.Bool("self-check", true, "pump sampled queries through the dual-read window so an idle cluster still meets the cutover guard")
	statusEvery := fs.Duration("status-every", time.Second, "progress print interval")
	timeout := fs.Duration("timeout", 0, "overall rescale deadline (0 waits indefinitely)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/rescale on this address (the control address for status/pause/resume/abort)")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error, off")
	debugAddr := fs.String("debug", "", "the coordinating fxnode's -metrics-addr; status/pause/resume/abort only")
	name := fs.String("name", "", "rescale name on /debug/rescale when several are registered")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *action {
	case "start":
		return startRescale(rescaleStartConfig{
			snapshot: *snapshot, addrs: *addrsArg, newAddrs: *newAddrsArg,
			newM: *newM, journal: *journal, concurrency: *concurrency,
			guardQueries: *guardQueries, noGuard: *noGuard, selfCheck: *selfCheck,
			statusEvery: *statusEvery, timeout: *timeout,
			metricsAddr: *metricsAddr, logLevel: *logLevel,
		})
	case "status":
		if *debugAddr == "" {
			return fmt.Errorf("-action %s needs -debug <coordinator's -metrics-addr>", *action)
		}
		body, err := rescaleDebugGet(debugBase(*debugAddr))
		if err != nil {
			return err
		}
		fmt.Print(body)
		return nil
	case "pause", "resume", "abort":
		if *debugAddr == "" {
			return fmt.Errorf("-action %s needs -debug <coordinator's -metrics-addr>", *action)
		}
		body, err := rescaleDebugPost(debugBase(*debugAddr), *action, *name)
		if err != nil {
			return err
		}
		fmt.Print(body)
		return nil
	default:
		return fmt.Errorf("unknown -action %q (want start|status|pause|resume|abort)", *action)
	}
}

type rescaleStartConfig struct {
	snapshot, addrs, newAddrs string
	newM, concurrency         int
	journal                   string
	guardQueries              uint64
	noGuard, selfCheck        bool
	statusEvery, timeout      time.Duration
	metricsAddr, logLevel     string
}

// startRescale drives a live rescale to completion from the shell: it
// opens the cluster over the current addresses, starts the migration,
// prints progress until cutover (or failure after rollback), and exits
// with the cluster answering from the new layout. While it runs, its
// -metrics-addr serves /debug/rescale for the status/pause/resume/abort
// verbs of other fxnode processes.
func startRescale(cfg rescaleStartConfig) error {
	if cfg.snapshot == "" || cfg.addrs == "" {
		return fmt.Errorf("missing -snapshot or -addrs")
	}
	if cfg.newM <= 0 {
		return fmt.Errorf("missing -new-m")
	}
	if err := fxdist.SetLogLevel(cfg.logLevel); err != nil {
		return err
	}
	if cfg.metricsAddr != "" {
		addr, stop, err := fxdist.ServeMetrics(cfg.metricsAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("fxnode: rescale control on http://%s/debug/rescale\n", addr)
	}
	file, alloc, err := fxdist.LoadSnapshotFile(cfg.snapshot)
	if err != nil {
		return err
	}
	if alloc == nil {
		return fmt.Errorf("snapshot carries no allocator spec")
	}
	addrs := strings.Split(cfg.addrs, ",")
	var newAddrs []string
	switch {
	case cfg.newAddrs != "":
		newAddrs = strings.Split(cfg.newAddrs, ",")
	case cfg.newM < len(addrs):
		// Shrinking keeps a prefix of the current device set.
		newAddrs = addrs[:cfg.newM]
	default:
		return fmt.Errorf("growing to %d devices needs -new-addrs listing the joining rescale-target servers", cfg.newM)
	}
	if plan, err := fxdist.RescalePlanOf(alloc, cfg.newM); err == nil {
		fmt.Printf("fxnode: rescale %d -> %d devices: %d of %d buckets move, %d stay (owners derivable: %v)\n",
			plan.OldM, plan.NewM, len(plan.Moves), plan.Total, plan.Stay, plan.Derivable)
	}

	// A signal aborts the rescale (the driver rolls every server back)
	// rather than killing the process mid-migration; the journal makes
	// even a hard kill resumable.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	ctx := sigCtx
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	var opts []fxdist.Option
	if cfg.journal != "" {
		opts = append(opts, fxdist.WithRescale(cfg.journal))
	}
	cl, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs}, opts...)
	if err != nil {
		return err
	}
	defer cl.Close()
	resc, err := cl.Rescale(ctx, fxdist.RescaleConfig{
		Addrs:           newAddrs,
		NewM:            cfg.newM,
		Allocator:       alloc,
		Concurrency:     cfg.concurrency,
		GuardMinQueries: cfg.guardQueries,
		DisableGuard:    cfg.noGuard,
	})
	if err != nil {
		return err
	}

	var pms []fxdist.PartialMatch
	if cfg.selfCheck {
		pms = sampleQueries(file, 8)
	}
	waitc := make(chan error, 1)
	go func() { waitc <- resc.Wait() }()
	ticker := time.NewTicker(cfg.statusEvery)
	defer ticker.Stop()
	for {
		select {
		case err := <-waitc:
			st := resc.Status()
			if err != nil {
				return fmt.Errorf("rescale failed in phase %s: %w", st.Phase, err)
			}
			fmt.Printf("fxnode: rescale complete: cluster now answers over %d devices (%d buckets moved; %d dual reads, %d mismatches)\n",
				cl.M(), st.Copied, st.DualReads.Started, st.DualReads.Mismatches)
			return nil
		case <-ticker.C:
			st := resc.Status()
			line := fmt.Sprintf("fxnode: phase %-9s %d/%d buckets copied", st.Phase, st.Copied, st.TotalMoves)
			if st.DualReads.Started > 0 {
				line += fmt.Sprintf("; dual reads %d (old wins %d, new wins %d, mismatches %d)",
					st.DualReads.Started, st.DualReads.OldWins, st.DualReads.NewWins, st.DualReads.Mismatches)
			}
			if st.Paused {
				line += " [paused]"
			}
			if st.LastGuardErr != "" {
				line += " [guard: " + st.LastGuardErr + "]"
			}
			fmt.Println(line)
			if len(pms) > 0 && !resc.Done() {
				// Self-check traffic: during dual-read each query races both
				// epochs, is cross-checked, and counts toward the guard floor.
				vctx, vcancel := context.WithTimeout(ctx, cfg.statusEvery)
				if err := resc.Verify(vctx, pms); err != nil && ctx.Err() == nil {
					fmt.Printf("fxnode: self-check query failed: %v\n", err)
				}
				vcancel()
			}
		}
	}
}

// sampleQueries builds up to n partial matches of mixed shapes from
// records actually in the file, so every one has a verifiable answer.
func sampleQueries(file *fxdist.File, n int) []fxdist.PartialMatch {
	fields := file.Schema().Fields
	var recs []fxdist.Record
	file.EachBucket(func(_ []int, records []fxdist.Record) {
		if len(recs) < n && len(records) > 0 {
			recs = append(recs, records[0])
		}
	})
	var pms []fxdist.PartialMatch
	for i, r := range recs {
		fi := i % len(fields)
		pairs := map[string]string{fields[fi]: r[fi]}
		if i%2 == 1 && len(fields) > 1 {
			fj := (fi + 1) % len(fields)
			pairs[fields[fj]] = r[fj]
		}
		pm, err := file.Spec(pairs)
		if err != nil {
			continue
		}
		pms = append(pms, pm)
	}
	return pms
}

// debugBase normalises a -debug address into a base URL.
func debugBase(addr string) string {
	if strings.Contains(addr, "://") {
		return strings.TrimSuffix(addr, "/")
	}
	return "http://" + addr
}

// rescaleDebugGet fetches a coordinator's /debug/rescale document.
func rescaleDebugGet(base string) (string, error) {
	res, err := http.Get(base + "/debug/rescale")
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET /debug/rescale: %s: %s", res.Status, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}

// rescaleDebugPost steers a running rescale through /debug/rescale.
func rescaleDebugPost(base, action, name string) (string, error) {
	form := url.Values{"action": {action}}
	if name != "" {
		form.Set("name", name)
	}
	res, err := http.PostForm(base+"/debug/rescale", form)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if res.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s: %s", action, res.Status, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}

// printAudit summarises the per-shape optimality audit and SLO state of
// the coordinator's backend after the query.
func printAudit() {
	for _, rep := range fxdist.OptimalityReport() {
		if rep.Backend != "netdist" {
			continue
		}
		for _, s := range rep.Shapes {
			line := fmt.Sprintf("audit shape %s: %d queries, %d violations, max deviation %d (bound %d)",
				s.Shape, s.Queries, s.Violations, s.MaxDeviation, s.Bound)
			if s.SLOTarget > 0 {
				line += fmt.Sprintf("; slo %v/%.2f%%: %d good %d bad, burn %.2f",
					s.SLOTarget, s.SLOGoal*100, s.Good, s.Bad, s.BurnRate)
			}
			fmt.Println(line)
		}
	}
}
