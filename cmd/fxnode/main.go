// Command fxnode runs the distributed deployment pieces from the shell:
// serve one device's partition of a snapshotted file over TCP, or act as
// the coordinator and query a set of device servers.
//
// Usage:
//
//	# window 0..M-1: one server per device, all from the same snapshot
//	fxnode serve -snapshot cars.snap -device 0 -listen 127.0.0.1:9000
//	fxnode serve -snapshot cars.snap -device 1 -listen 127.0.0.1:9001
//	...
//
//	# coordinator: schema comes from the same snapshot
//	fxnode query -snapshot cars.snap -addrs 127.0.0.1:9000,127.0.0.1:9001 make=ford
//
// Both subcommands accept -metrics-addr to expose the observability
// endpoints (/metrics Prometheus text, /debug/vars JSON, /debug/traces
// recent query spans, /debug/pprof/ runtime profiles):
//
//	fxnode serve -snapshot cars.snap -device 0 -listen 127.0.0.1:9000 -metrics-addr 127.0.0.1:9100
//	curl -s 127.0.0.1:9100/metrics | grep fxdist_netdist_server
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fxdist"
	"fxdist/internal/cliutil"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: fxnode {serve|query} [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxnode:", err)
		os.Exit(1)
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	snapshot := fs.String("snapshot", "", "snapshot file (with allocator spec)")
	device := fs.Int("device", 0, "device id this node serves")
	listen := fs.String("listen", "127.0.0.1:0", "listen address")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/traces and /debug/pprof/ on this address")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error, off")
	shedInflight := fs.Int("shed-inflight", 0, "shed requests beyond this many in flight with a retryable busy response (0 disables)")
	shedRetryAfter := fs.Duration("shed-retry-after", 250*time.Millisecond, "retry-after hint attached to shed responses")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapshot == "" {
		return fmt.Errorf("missing -snapshot")
	}
	if err := fxdist.SetLogLevel(*logLevel); err != nil {
		return err
	}
	if *metricsAddr != "" {
		addr, stop, err := fxdist.ServeMetrics(*metricsAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("fxnode: observability on http://%s/metrics — endpoint index at http://%s/debug/\n", addr, addr)
	}
	file, alloc, err := fxdist.LoadSnapshotFile(*snapshot)
	if err != nil {
		return err
	}
	if alloc == nil {
		return fmt.Errorf("snapshot carries no allocator spec")
	}
	spec, err := fxdist.DescribeAllocator(alloc)
	if err != nil {
		return err
	}
	parts, err := fxdist.PartitionFile(file, alloc)
	if err != nil {
		return err
	}
	if *device < 0 || *device >= len(parts) {
		return fmt.Errorf("device %d out of range [0,%d)", *device, len(parts))
	}
	srv, err := fxdist.NewDeviceServer(*device, spec, parts[*device])
	if err != nil {
		return err
	}
	if *shedInflight > 0 {
		srv.SetShedding(*shedInflight, *shedRetryAfter)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	buckets := 0
	for range parts[*device] {
		buckets++
	}
	fmt.Printf("fxnode: serving device %d (%d buckets) of %s on %s\n",
		*device, buckets, alloc.Name(), l.Addr())
	// Serve blocks until the listener closes. A SIGINT/SIGTERM closes the
	// server so Serve returns cleanly and the deferred metrics shutdown
	// actually runs (instead of the process dying mid-request with the
	// observability listener still bound).
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		fmt.Println("fxnode: shutting down")
		srv.Close()
	}()
	return srv.Serve(l)
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	snapshot := fs.String("snapshot", "", "snapshot file (schema source)")
	addrsArg := fs.String("addrs", "", "comma-separated device addresses, in device order")
	timeout := fs.Duration("timeout", 0, "overall retrieval deadline (0 waits indefinitely)")
	statsPull := fs.Duration("stats-pull", 0, "pull every device server's metrics snapshot at this interval into the /debug/cluster fleet view (0 pulls once)")
	slo := fs.Duration("slo", 0, "latency objective per query shape (0 disables SLO tracking)")
	sloGoal := fs.Float64("slo-goal", 0.99, "fraction of queries that must meet -slo")
	profileDir := fs.String("profile-dir", "", "spool triggered pprof captures into this directory (enables triggered profiling)")
	profileBurn := fs.Float64("profile-burn", 0, "SLO burn rate that triggers a pprof capture (0 disables the burn trigger)")
	profileLatency := fs.Duration("profile-latency", 0, "single-query latency that triggers a pprof capture (0 disables the latency trigger)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/traces, /debug/optimality, /debug/hotpath, /debug/flight, /debug/profiles and /debug/pprof/ on this address")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, error, off")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapshot == "" || *addrsArg == "" {
		return fmt.Errorf("missing -snapshot or -addrs")
	}
	if err := fxdist.SetLogLevel(*logLevel); err != nil {
		return err
	}
	if *metricsAddr != "" {
		addr, stop, err := fxdist.ServeMetrics(*metricsAddr)
		if err != nil {
			return err
		}
		defer stop()
		fmt.Printf("fxnode: observability on http://%s/metrics — endpoint index at http://%s/debug/\n", addr, addr)
	}
	file, _, err := fxdist.LoadSnapshotFile(*snapshot)
	if err != nil {
		return err
	}
	spec, err := cliutil.ParseTerms(fs.Args())
	if err != nil {
		return err
	}
	pm, err := file.Spec(spec)
	if err != nil {
		return err
	}
	var opts []fxdist.Option
	if *slo > 0 {
		opts = append(opts, fxdist.WithLatencySLO(*slo, *sloGoal))
	}
	if *profileDir != "" || *profileBurn > 0 || *profileLatency > 0 {
		fxdist.EnableTriggeredProfiling(fxdist.TriggeredProfilingConfig{
			Dir:              *profileDir,
			BurnThreshold:    *profileBurn,
			LatencyThreshold: *profileLatency,
		})
		defer func() {
			for _, cap := range fxdist.DisableTriggeredProfiling() {
				if cap.Err != "" {
					fmt.Printf("profile capture %s/%s (%s): %s\n", cap.Backend, cap.Shape, cap.Reason, cap.Err)
					continue
				}
				fmt.Printf("profile capture %s/%s (%s): %s %s\n",
					cap.Backend, cap.Shape, cap.Reason, cap.CPUFile, cap.HeapFile)
			}
		}()
	}
	if *statsPull > 0 {
		opts = append(opts, fxdist.WithStatsPull(*statsPull))
	}
	coord, err := fxdist.Open(fxdist.Config{File: file, Addrs: strings.Split(*addrsArg, ",")}, opts...)
	if err != nil {
		return err
	}
	defer coord.Close()
	// A signal cancels the retrieval instead of killing the process, so
	// the deferred metrics and coordinator shutdowns run.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	ctx := sigCtx
	if *statsPull == 0 {
		// One synchronous pull populates /debug/cluster for this process's
		// lifetime even without a refresh loop.
		coord.Coordinator().PullStats(ctx) //nolint:errcheck // failures land in the federator
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := coord.RetrieveContext(ctx, pm)
	if err != nil {
		var terr *fxdist.TracedError
		if errors.As(err, &terr) {
			if ctx.Err() != nil {
				return fmt.Errorf("%w [deadline %v exceeded; join trace %d against /debug/traces]", err, *timeout, terr.TraceID)
			}
			return fmt.Errorf("%w [join trace %d against /debug/traces]", err, terr.TraceID)
		}
		return err
	}
	fmt.Printf("%d matching records; buckets/device %v; largest %d; trace %d\n",
		len(res.Records), res.DeviceBuckets, res.LargestResponseSize, res.TraceID)
	for i, r := range res.Records {
		if i == 20 {
			fmt.Printf("... and %d more\n", len(res.Records)-20)
			break
		}
		fmt.Println(" ", strings.Join(r, ", "))
	}
	printAudit()
	if *statsPull > 0 {
		// The refresh loop makes this process the fleet view: keep it
		// (and its /debug/cluster endpoint) alive for fxtop until a
		// signal, rather than exiting after one query.
		fmt.Printf("fxnode: pulling device stats every %v; Ctrl-C to exit\n", *statsPull)
		<-sigCtx.Done()
	}
	return nil
}

// printAudit summarises the per-shape optimality audit and SLO state of
// the coordinator's backend after the query.
func printAudit() {
	for _, rep := range fxdist.OptimalityReport() {
		if rep.Backend != "netdist" {
			continue
		}
		for _, s := range rep.Shapes {
			line := fmt.Sprintf("audit shape %s: %d queries, %d violations, max deviation %d (bound %d)",
				s.Shape, s.Queries, s.Violations, s.MaxDeviation, s.Bound)
			if s.SLOTarget > 0 {
				line += fmt.Sprintf("; slo %v/%.2f%%: %d good %d bad, burn %.2f",
					s.SLOTarget, s.SLOGoal*100, s.Good, s.Bad, s.BurnRate)
			}
			fmt.Println(line)
		}
	}
}
