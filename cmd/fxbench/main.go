// Command fxbench regenerates the paper's quantitative comparisons:
// Tables 7-9 (average largest response size per declustering method) and
// the §5.2.2 CPU address-computation cost comparison.
//
// Usage:
//
//	fxbench                    # Tables 7-9 and the CPU cost comparison
//	fxbench -table 9           # one table
//	fxbench -cpu               # only the CPU cost comparison
//	fxbench -format csv        # csv or json output
package main

import (
	"flag"
	"fmt"
	"os"

	"fxdist/internal/analysis"
	"fxdist/internal/cost"
	"fxdist/internal/field"
	"fxdist/internal/report"
)

func main() {
	tableNum := flag.Int("table", 0, "table number to print (7-9); 0 prints all")
	cpuOnly := flag.Bool("cpu", false, "print only the CPU cost comparison")
	formatArg := flag.String("format", "text", "output format: text, csv or json")
	flag.Parse()
	if *tableNum != 0 && (*tableNum < 7 || *tableNum > 9) {
		fmt.Fprintln(os.Stderr, "fxbench: -table must be 7..9")
		os.Exit(2)
	}
	format, err := report.ParseFormat(*formatArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxbench:", err)
		os.Exit(2)
	}

	printCPU := func() {
		plan := field.MustPlan([]int{8, 8, 8, 8, 8, 8}, 32,
			field.WithStrategy(field.RoundRobin), field.WithFamily(field.FamilyIU1))
		if format == report.Text {
			fmt.Println("§5.2.2 CPU computation time (bucket address computation, 6 fields)")
		}
		var rows []cost.Comparison
		for _, cpu := range []cost.CPU{cost.MC68000, cost.I80286} {
			rows = append(rows, cost.Compare(cpu, plan)...)
		}
		if err := report.CPUCost(os.Stdout, rows, format); err != nil {
			fmt.Fprintln(os.Stderr, "fxbench:", err)
			os.Exit(1)
		}
	}

	if *cpuOnly {
		printCPU()
		return
	}
	specs := []analysis.TableSpec{analysis.Table7(), analysis.Table8(), analysis.Table9()}
	for i, ts := range specs {
		if *tableNum != 0 && *tableNum != i+7 {
			continue
		}
		if err := report.Table(os.Stdout, ts, format); err != nil {
			fmt.Fprintln(os.Stderr, "fxbench:", err)
			os.Exit(1)
		}
		if format == report.Text {
			fmt.Println()
		}
	}
	if *tableNum == 0 {
		printCPU()
	}
}
