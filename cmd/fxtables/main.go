// Command fxtables reprints the paper's worked examples (Tables 1-6):
// the bucket-to-device mapping of Basic and Extended FX distribution on
// small file systems, in the paper's format (binary field values, decimal
// device numbers).
//
// Usage:
//
//	fxtables            # print all six tables
//	fxtables -table 3   # print only Table 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fxdist/internal/bitsx"
	"fxdist/internal/decluster"
	"fxdist/internal/field"
)

type tableDef struct {
	num     int
	caption string
	sizes   []int
	m       int
	kinds   []field.Kind
	// withModulo adds the paper's Modulo comparison column (Table 2).
	withModulo bool
}

var tables = []tableDef{
	{1, "Basic FX distribution", []int{2, 8}, 4, []field.Kind{field.I, field.I}, false},
	{2, "FX distribution with I and U transformation (vs Modulo)", []int{4, 4}, 16, []field.Kind{field.I, field.U}, true},
	{3, "FX distribution with I and IU1 transformation", []int{4, 4}, 16, []field.Kind{field.I, field.IU1}, false},
	{4, "FX distribution with I, U and IU1 transformation", []int{2, 4, 2}, 8, []field.Kind{field.I, field.U, field.IU1}, false},
	{5, "FX distribution with I and IU2 transformation", []int{8, 2}, 16, []field.Kind{field.I, field.IU2}, false},
	{6, "FX distribution with I, U and IU2 transformation", []int{4, 2, 2}, 16, []field.Kind{field.I, field.U, field.IU2}, false},
}

func printTable(def tableDef) {
	fs := decluster.MustFileSystem(def.sizes, def.m)
	fx := decluster.MustFX(fs, field.WithKinds(def.kinds))
	md := decluster.NewModulo(fs)

	fmt.Printf("Table %d. %s\n", def.num, def.caption)
	fmt.Printf("  file system: F = %v, M = %d, plan = %v\n\n", def.sizes, def.m, fx.Plan())

	// Column headers: transformed field values, then device number(s).
	// Each column prints log2(M) bits (the paper's convention), widened
	// when an identity-transformed field is larger than M.
	widths := make([]int, fs.NumFields())
	for i, f := range def.sizes {
		widths[i] = bitsx.Log2(def.m)
		if fb := bitsx.Log2(f); fb > widths[i] {
			widths[i] = fb
		}
	}
	header := "  "
	for i, fn := range fx.Plan().Funcs {
		header += fmt.Sprintf("%-*s ", widths[i]+2, fmt.Sprintf("%v(f%d)", fn.Kind(), i+1))
	}
	header += "Device(FX)"
	if def.withModulo {
		header += "  Device(Modulo)"
	}
	fmt.Println(header)
	fmt.Println("  " + strings.Repeat("-", len(header)))

	fs.EachBucket(func(b []int) {
		row := "  "
		for i, v := range b {
			t := fx.Plan().Funcs[i].Apply(v)
			row += fmt.Sprintf("%-*s ", widths[i]+2, bitsx.Binary(t, widths[i]))
		}
		row += fmt.Sprintf("%10d", fx.Device(b))
		if def.withModulo {
			row += fmt.Sprintf("%16d", md.Device(b))
		}
		fmt.Println(row)
	})
	fmt.Println()
}

func main() {
	tableNum := flag.Int("table", 0, "table number to print (1-6); 0 prints all")
	flag.Parse()
	if *tableNum < 0 || *tableNum > 6 {
		fmt.Fprintln(os.Stderr, "fxtables: -table must be 0..6")
		os.Exit(2)
	}
	for _, def := range tables {
		if *tableNum == 0 || def.num == *tableNum {
			printTable(def)
		}
	}
}
