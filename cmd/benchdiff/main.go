// Command benchdiff is the perf-regression gate: it compares two
// benchmark snapshots written by scripts/bench.sh and exits non-zero
// when the current one regresses past the gates (ns/op beyond the
// noise allowance, B/op growth, allocs/op creep, or a benchmark
// missing from the current snapshot).
//
// Usage:
//
//	scripts/bench.sh /tmp/cur.json
//	benchdiff BENCH_2026-08-05.4.json /tmp/cur.json
//	benchdiff -ns-frac 0.5 -bytes-frac 0.3 -allocs-frac 0.1 base.json cur.json
package main

import (
	"flag"
	"fmt"
	"os"

	"fxdist/internal/benchdiff"
)

func main() {
	def := benchdiff.DefaultThresholds()
	nsFrac := flag.Float64("ns-frac", def.NsFrac, "allowed fractional ns/op growth before failing")
	bytesFrac := flag.Float64("bytes-frac", def.BytesFrac, "allowed fractional B/op growth before failing")
	allocsFrac := flag.Float64("allocs-frac", def.AllocsFrac, "allowed fractional allocs/op growth before failing")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-ns-frac F] [-bytes-frac F] [-allocs-frac F] base.json current.json")
		os.Exit(2)
	}
	base, err := benchdiff.Load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := benchdiff.Load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	th := benchdiff.Thresholds{NsFrac: *nsFrac, BytesFrac: *bytesFrac, AllocsFrac: *allocsFrac}
	deltas, regressed := benchdiff.Diff(base, cur, th)
	benchdiff.WriteText(os.Stdout, base, cur, deltas, th)
	if regressed {
		fmt.Fprintln(os.Stderr, "benchdiff: performance regression detected")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
