// Command pmquery demonstrates end-to-end partial match retrieval on a
// simulated parallel machine: it generates a synthetic relation, builds a
// multi-key hashed file, declusters it over M devices with a chosen
// method, runs a query workload, and reports result counts and the
// simulated parallel cost breakdown.
//
// Usage:
//
//	pmquery -records 20000 -devices 16 -method fx -queries 10 -p 0.5
//	pmquery -method modulo -model disk
//	pmquery -queries 64 -batch
//	pmquery -queries 3 -explain
//	pmquery -queries 50 -flight
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fxdist"
)

func main() {
	// All work happens in run so its defers (metrics listener shutdown,
	// profile spooling) execute before the process exits — os.Exit here
	// would skip them if it lived past the defer registrations.
	if err := run(); err != nil {
		var terr *fxdist.TracedError
		if errors.As(err, &terr) {
			fmt.Fprintf(os.Stderr, "pmquery: %v [join trace %d against /debug/traces]\n", err, terr.TraceID)
		} else {
			fmt.Fprintln(os.Stderr, "pmquery:", err)
		}
		os.Exit(1)
	}
}

func run() error {
	records := flag.Int("records", 20000, "number of synthetic records")
	devices := flag.Int("devices", 16, "number of parallel devices (power of two)")
	method := flag.String("method", "fx", "declustering method: fx, basicfx, modulo, gdm")
	queries := flag.Int("queries", 10, "number of queries to run")
	p := flag.Float64("p", 0.5, "per-field specification probability")
	model := flag.String("model", "memory", "device model: memory or disk")
	seed := flag.Int64("seed", 1988, "workload seed")
	batch := flag.Bool("batch", false, "submit the whole workload as one RetrieveBatch instead of one query at a time")
	explain := flag.Bool("explain", false, "print the span tree, stage cost breakdown and per-device optimality verdict for each query")
	flight := flag.Bool("flight", false, "after the workload, dump the slow-query flight recorder (slowest retained queries per shape)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/traces, /debug/optimality, /debug/hotpath, /debug/flight and /debug/pprof/ on this address while the workload runs")
	flag.Parse()

	if *metricsAddr != "" {
		addr, stopMetrics, err := fxdist.ServeMetrics(*metricsAddr)
		if err != nil {
			return err
		}
		defer stopMetrics()
		fmt.Printf("pmquery: observability on http://%s/metrics — endpoint index at http://%s/debug/\n\n", addr, addr)
	}

	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "part", Cardinality: 2000},
		{Name: "supplier", Cardinality: 300},
		{Name: "warehouse", Cardinality: 40},
		{Name: "status", Cardinality: 8},
	}}
	depths := []int{5, 4, 3, 2} // F = 32, 16, 8, 4

	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, depths))
	if err != nil {
		return err
	}
	recs, err := fxdist.GenerateRecords(spec, *records, *seed)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := file.Insert(r); err != nil {
			return err
		}
	}

	fs, err := file.FileSystem(*devices)
	if err != nil {
		return err
	}
	var alloc fxdist.GroupAllocator
	switch strings.ToLower(*method) {
	case "fx":
		alloc, err = fxdist.NewFX(fs)
	case "basicfx":
		alloc, err = fxdist.NewBasicFX(fs)
	case "modulo":
		alloc = fxdist.NewModulo(fs)
	case "gdm":
		alloc, err = fxdist.NewGDM(fs, []int{2, 3, 5, 7})
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		return err
	}

	cm := fxdist.MainMemory
	if strings.ToLower(*model) == "disk" {
		cm = fxdist.ParallelDisk
	}

	cluster, err := fxdist.Open(fxdist.Config{File: file, Allocator: alloc}, fxdist.WithCostModel(cm))
	if err != nil {
		return err
	}

	fmt.Printf("file: %d records, directory %v, %d devices, method %s, model %s\n\n",
		file.Len(), file.Sizes(), *devices, alloc.Name(), cm.Name)

	pms, err := fxdist.GeneratePartialMatches(spec, *queries, *p, *seed+1)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var results []fxdist.RetrieveResult
	if *batch {
		results, err = cluster.RetrieveBatch(ctx, pms)
		if err != nil {
			return err
		}
	} else {
		results = make([]fxdist.RetrieveResult, len(pms))
		for i, pm := range pms {
			if results[i], err = cluster.RetrieveContext(ctx, pm); err != nil {
				return fmt.Errorf("query %d: %w", i, err)
			}
		}
	}
	var worst, total float64
	for i, res := range results {
		fmt.Printf("q%-2d %-60s hits=%-6d buckets(max/dev)=%-4d response=%-12v work=%v\n",
			i, renderQuery(spec, pms[i]), len(res.Records), res.LargestResponseSize,
			res.Response, res.TotalWork)
		if *explain {
			explainResult(file, fs, pms[i], res)
		}
		total += res.Response.Seconds()
		if res.Response.Seconds() > worst {
			worst = res.Response.Seconds()
		}
	}
	fmt.Printf("\navg response %.6fs, worst %.6fs\n", total/float64(len(pms)), worst)

	if *flight {
		fmt.Println()
		fxdist.WriteFlightReport(os.Stdout, fxdist.FlightReport())
	}
	return nil
}

// explainResult prints one query's per-device optimality verdict against
// the paper's strict-optimality bound ceil(|R(q)|/M), plus the span tree
// of the retrieval (joinable with /debug/traces?tree=1 by trace id).
func explainResult(file *fxdist.File, fs fxdist.FileSystem, pm fxdist.PartialMatch, res fxdist.RetrieveResult) {
	q, err := file.BucketQuery(pm)
	if err != nil {
		fmt.Printf("    explain: %v\n", err)
		return
	}
	rq := q.NumQualified(fs)
	m := len(res.DeviceBuckets)
	bound := (rq + m - 1) / m
	fmt.Printf("    |R(q)|=%d devices=%d strict-optimal bound=ceil(%d/%d)=%d\n", rq, m, rq, m, bound)
	for d, b := range res.DeviceBuckets {
		verdict := "ok"
		if b > bound {
			verdict = fmt.Sprintf("OVER bound by %d", b-bound)
		}
		fmt.Printf("    device %-3d buckets=%-5d %s\n", d, b, verdict)
	}
	printStages(res, "    ")
	if res.TraceID == 0 {
		return
	}
	for _, tree := range fxdist.RecentTraceTrees(256) {
		if tree.TraceID == res.TraceID {
			fmt.Printf("    trace %d:\n", res.TraceID)
			printTree(tree, "      ")
			return
		}
	}
	fmt.Printf("    trace %d: evicted from trace ring\n", res.TraceID)
}

// printStages renders the query's cost breakdown: wall time, bytes and
// heap objects per stage, with each top-level stage's share of the
// whole-query latency.
func printStages(res fxdist.RetrieveResult, indent string) {
	if len(res.Stages) == 0 {
		return
	}
	var total time.Duration
	for _, s := range res.Stages {
		switch s.Stage {
		case fxdist.StagePlan, fxdist.StageFanout, fxdist.StageMerge, fxdist.StageAudit:
			total += s.Wall
		}
	}
	fmt.Printf("%sstages:\n", indent)
	for _, s := range res.Stages {
		frac := ""
		if total > 0 {
			switch s.Stage {
			case fxdist.StagePlan, fxdist.StageFanout, fxdist.StageMerge, fxdist.StageAudit:
				frac = fmt.Sprintf(" (%4.1f%%)", 100*float64(s.Wall)/float64(total))
			}
		}
		fmt.Printf("%s  %-12s %10v%s  bytes=%-8d objects=%d\n",
			indent, s.Stage, s.Wall, frac, s.Bytes, s.Objects)
	}
}

func printTree(t fxdist.TraceTree, indent string) {
	fmt.Printf("%s%s span=%d dur=%v events=%d\n", indent, t.Name, t.ID, t.Duration, len(t.Events))
	for _, c := range t.Children {
		printTree(c, indent+"  ")
	}
}

func renderQuery(spec fxdist.RecordSpec, pm fxdist.PartialMatch) string {
	parts := make([]string, len(pm))
	for i, v := range pm {
		if v == nil {
			parts[i] = spec.Fields[i].Name + "=*"
		} else {
			parts[i] = spec.Fields[i].Name + "=" + *v
		}
	}
	return strings.Join(parts, " ")
}
