// Command fxplan advises on declustering a file system: it plans FX field
// transformations for the given field sizes and device count, reports how
// much of the query space is certifiably and exactly strict-optimal,
// names a failing query class when one exists, and can exhaustively
// search all transform assignments.
//
// Usage:
//
//	fxplan -fields 8,8,8,16,16,16 -m 512
//	fxplan -fields 2,2,2,2 -m 16 -search
//	fxplan -fields 8,8 -m 32 -p 0.7    # weight query classes by spec prob.
package main

import (
	"flag"
	"fmt"
	"os"

	"fxdist"
	"fxdist/internal/cliutil"
)

func main() {
	fieldsArg := flag.String("fields", "", "comma-separated field sizes (powers of two)")
	m := flag.Int("m", 0, "number of parallel devices (power of two)")
	search := flag.Bool("search", false, "exhaustively search all transform assignments")
	p := flag.Float64("p", 0.5, "per-field specification probability for the weighted score")
	flag.Parse()

	sizes, err := cliutil.ParseSizes(*fieldsArg)
	if err != nil {
		fatal(err)
	}
	fs, err := fxdist.NewFileSystem(sizes, *m)
	if err != nil {
		fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("file system: F = %v, M = %d (%d fields smaller than M)\n",
		sizes, *m, fs.SmallFieldCount())
	fmt.Printf("recommended plan: %v\n\n", fxdist.Kinds(fx))

	n := fs.NumFields()
	certified, err := fxdist.WeightedOptimality(n, *p, func(s []int) bool {
		return fxdist.FXGuaranteed(fx, subsetQuery(n, s))
	})
	if err != nil {
		fatal(err)
	}
	exact, err := fxdist.WeightedOptimality(n, *p, func(s []int) bool {
		return fxdist.StrictOptimal(fx, subsetQuery(n, s))
	})
	if err != nil {
		fatal(err)
	}
	modulo, err := fxdist.WeightedOptimality(n, *p, func(s []int) bool {
		return fxdist.ModuloGuaranteed(fs, subsetQuery(n, s))
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("strict-optimal probability at specification probability p = %.2f:\n", *p)
	fmt.Printf("  FX certified (§4.2 conditions): %6.2f%%\n", 100*certified)
	fmt.Printf("  FX exact:                       %6.2f%%\n", 100*exact)
	fmt.Printf("  Modulo certified [DuSo82]:      %6.2f%%\n", 100*modulo)

	if w, ok := fxdist.FindWitness(fx); ok {
		fmt.Printf("\nnot perfect optimal; smallest failing query class: unspecified fields %v "+
			"(largest response %d, optimal bound %d)\n", w.Unspec, w.MaxLoad, w.Bound)
	} else {
		fmt.Println("\nperfect optimal: strict optimal for every partial match query")
	}

	if *search {
		res, err := fxdist.SearchBestPlan(fs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nexhaustive search over %d assignments:\n", res.Evaluated)
		fmt.Printf("  best:    %v at %.2f%% of query classes\n", res.Kinds, res.OptimalPct)
		fmt.Printf("  planner: %v at %.2f%%\n", fxdist.Kinds(fx), res.PlannerPct)
	}

	// Workload-weighted method recommendation.
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = *p
	}
	basic, err := fxdist.NewBasicFX(fs)
	if err != nil {
		fatal(err)
	}
	candidates := []fxdist.GroupAllocator{fx, basic, fxdist.NewModulo(fs)}
	rec, err := fxdist.RecommendMethod(candidates, probs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nexpected largest response size at p = %.2f:\n", *p)
	for i, c := range candidates {
		marker := " "
		if i == rec.Best {
			marker = "*"
		}
		fmt.Printf("  %s %-24s %8.2f\n", marker, c.Name(), rec.Expected[i])
	}
	fmt.Printf("recommended method: %s\n", rec.Name)
}

// subsetQuery builds the canonical query with the given unspecified set.
func subsetQuery(n int, unspec []int) fxdist.Query {
	spec := make([]int, n)
	for _, i := range unspec {
		spec[i] = fxdist.Unspecified
	}
	return fxdist.NewQuery(spec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fxplan:", err)
	os.Exit(1)
}
