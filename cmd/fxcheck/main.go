// Command fxcheck verifies the integrity of a durable declustered store:
// every record must hash to the bucket it is filed under, and every
// bucket must live on the device the allocator assigns. Log-level
// corruption (torn or bit-flipped frames) is detected and healed by CRC
// recovery when the store opens; fxcheck covers the placement layer.
//
// Usage:
//
//	fxcheck -dir /tmp/cars
package main

import (
	"flag"
	"fmt"
	"os"

	"fxdist"
)

func main() {
	dir := flag.String("dir", "", "cluster directory")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: fxcheck -dir DIR")
		os.Exit(2)
	}
	h, err := fxdist.Open(fxdist.Config{Dir: *dir}, fxdist.WithCostModel(fxdist.ParallelDisk))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxcheck:", err)
		os.Exit(1)
	}
	defer h.Close()
	c := h.Durable()
	report, err := c.Check()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("cluster %s: %d devices, %d records (%s)\n",
		*dir, report.Devices, report.Records, c.Allocator().Name())
	fmt.Printf("records/device: %v\n", report.DeviceRecords)
	if report.Ok() {
		fmt.Println("OK: placement and hashing invariants hold")
		return
	}
	fmt.Printf("FAIL: %d misplaced, %d mishashed records\n",
		report.MisplacedRecords, report.MishashedRecords)
	for _, p := range report.Problems {
		fmt.Println("  -", p)
	}
	os.Exit(1)
}
