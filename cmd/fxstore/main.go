// Command fxstore manages a durable declustered store on disk: create one
// from a synthetic relation, inspect it, and run partial match queries
// against it across restarts.
//
// Usage:
//
//	fxstore -dir /tmp/cars create -records 50000 -devices 16 -method fx
//	fxstore -dir /tmp/cars info
//	fxstore -dir /tmp/cars query make=make-3 year=year-7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fxdist"
	"fxdist/internal/cliutil"
)

// carSpec is the demo relation all subcommands share.
var carSpec = fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
	{Name: "make", Cardinality: 30},
	{Name: "model", Cardinality: 500},
	{Name: "year", Cardinality: 25},
	{Name: "color", Cardinality: 12},
}}

var carDepths = []int{3, 4, 3, 2} // F = 8, 16, 8, 4

func main() {
	dir := flag.String("dir", "", "cluster directory")
	flag.Parse()
	if *dir == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: fxstore -dir DIR {create|info|query} [args]")
		os.Exit(2)
	}
	var err error
	switch flag.Arg(0) {
	case "create":
		err = runCreate(*dir, flag.Args()[1:])
	case "info":
		err = runInfo(*dir)
	case "query":
		err = runQuery(*dir, flag.Args()[1:])
	default:
		err = fmt.Errorf("unknown subcommand %q", flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxstore:", err)
		os.Exit(1)
	}
}

func runCreate(dir string, args []string) error {
	fs := flag.NewFlagSet("create", flag.ContinueOnError)
	records := fs.Int("records", 50000, "synthetic records to load")
	devices := fs.Int("devices", 16, "device count (power of two)")
	method := fs.String("method", "fx", "declustering method: fx, modulo")
	seed := fs.Int64("seed", 1, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(carSpec, carDepths))
	if err != nil {
		return err
	}
	recs, err := fxdist.GenerateRecords(carSpec, *records, *seed)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := file.Insert(r); err != nil {
			return err
		}
	}
	sys, err := file.FileSystem(*devices)
	if err != nil {
		return err
	}
	var alloc fxdist.GroupAllocator
	switch strings.ToLower(*method) {
	case "fx":
		alloc, err = fxdist.NewFX(sys)
	case "modulo":
		alloc = fxdist.NewModulo(sys)
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		return err
	}
	c, err := fxdist.Open(fxdist.Config{Dir: dir, File: file, Allocator: alloc},
		fxdist.WithCostModel(fxdist.ParallelDisk))
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("created %s: %d records on %d devices under %s\n",
		alloc.Name(), c.Durable().Len(), c.M(), dir)
	return nil
}

func runInfo(dir string) error {
	c, err := fxdist.Open(fxdist.Config{Dir: dir}, fxdist.WithCostModel(fxdist.ParallelDisk))
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("cluster %s\n  method: %s\n  devices: %d\n  records: %d\n",
		dir, c.Durable().Allocator().Name(), c.M(), c.Durable().Len())
	return nil
}

func runQuery(dir string, args []string) error {
	c, err := fxdist.Open(fxdist.Config{Dir: dir}, fxdist.WithCostModel(fxdist.ParallelDisk))
	if err != nil {
		return err
	}
	defer c.Close()
	spec, err := cliutil.ParseTerms(args)
	if err != nil {
		return err
	}
	pm, err := c.Spec(spec)
	if err != nil {
		return err
	}
	res, err := c.Retrieve(pm)
	if err != nil {
		return err
	}
	fmt.Printf("%d matching records; buckets/device %v; largest %d; simulated response %v\n",
		len(res.Records), res.DeviceBuckets, res.LargestResponseSize, res.Response)
	for i, r := range res.Records {
		if i == 10 {
			fmt.Printf("... and %d more\n", len(res.Records)-10)
			break
		}
		fmt.Println(" ", strings.Join(r, ", "))
	}
	return nil
}
