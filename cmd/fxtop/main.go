// Command fxtop is a live terminal dashboard over a node's telemetry
// plane: it polls /debug/cluster (the federated fleet view a stats-
// pulling coordinator maintains) and /debug/resilience on the target's
// -metrics-addr listener, and renders fleet health — QPS and per-shape
// rates from counter deltas, p50/p99 latency from the merged
// histograms, plan-cache hit rate, mempool recycle rate, circuit
// breaker states, and per-node liveness/lag with fault flags. While a
// live rescale runs it also polls /debug/rescale and renders the
// migration's phase, per-bucket progress and copy rate.
//
// Usage:
//
//	# against a coordinator started with -metrics-addr and -stats-pull
//	fxtop -addr 127.0.0.1:9100
//	fxtop -addr 127.0.0.1:9100 -interval 5s
//	fxtop -addr 127.0.0.1:9100 -once        # one frame, no screen clear
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9100", "metrics address of the node to watch (its -metrics-addr)")
	interval := flag.Duration("interval", 2*time.Second, "poll and refresh interval")
	once := flag.Bool("once", false, "render a single frame and exit (no screen clearing)")
	flag.Parse()

	var prev *snapshot
	for {
		cur, err := poll(*addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fxtop:", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(os.Stdout, prev, cur)
		if *once {
			return
		}
		prev = cur
		time.Sleep(*interval)
	}
}

// poll fetches one snapshot from the target's debug endpoints.
func poll(addr string) (*snapshot, error) {
	cur := &snapshot{at: time.Now()}
	if err := fetchJSON(addr, "/debug/cluster?format=json", &cur.fleets); err != nil {
		return nil, err
	}
	// Resilience is optional: a node without retry controllers still
	// renders; only transport errors are fatal.
	if err := fetchJSON(addr, "/debug/resilience?format=json", &cur.resil); err != nil {
		return nil, err
	}
	// The rescale endpoint only mounts while a migration driver is (or
	// was) registered; a node that never rescaled 404s, so this poll is
	// best-effort.
	fetchJSON(addr, "/debug/rescale", &cur.rescale) //nolint:errcheck // endpoint is optional
	return cur, nil
}

func fetchJSON(addr, path string, into any) error {
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}
