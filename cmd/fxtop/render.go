package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"fxdist"
)

// snapshot is one poll of the target node: the federated fleet reports
// plus the node's own resilience document (breakers live in the
// coordinator process, not in the pulled per-server snapshots).
type snapshot struct {
	at      time.Time
	fleets  map[string]fxdist.FleetReport
	resil   resilienceDoc
	rescale rescaleDoc
}

// rescaleDoc mirrors the /debug/rescale GET document (the migration
// drivers registered on the target, by name).
type rescaleDoc struct {
	Rescales map[string]rescaleRow `json:"rescales"`
}

type rescaleRow struct {
	Phase        string  `json:"phase"`
	OldM         int     `json:"old_m"`
	NewM         int     `json:"new_m"`
	TotalMoves   int     `json:"total_moves"`
	Copied       int     `json:"copied"`
	MoveFraction float64 `json:"move_fraction"`
	Paused       bool    `json:"paused"`
	Err          string  `json:"err"`
	LastGuardErr string  `json:"last_guard_err"`
}

// resilienceDoc mirrors the /debug/resilience JSON shape fxtop renders
// (a subset; unknown fields are ignored by the decoder).
type resilienceDoc struct {
	Retry []retryRow `json:"retry"`
}

type retryRow struct {
	Backend  string       `json:"backend"`
	Retries  uint64       `json:"retries"`
	Hedges   uint64       `json:"hedges"`
	Partials uint64       `json:"partial_results"`
	Breakers []breakerRow `json:"breakers"`
}

type breakerRow struct {
	Device int    `json:"device"`
	State  string `json:"state"`
}

// latencyRows maps the merged histograms fxtop summarises to the label
// they render under.
var latencyRows = []struct{ metric, label string }{
	{"fxdist_netdist_server_request_seconds", "server"},
	{"fxdist_netdist_coordinator_retrieve_seconds", "coordinator"},
	{"fxdist_storage_retrieve_seconds", "storage"},
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// rate renders a cur-prev counter delta as a per-second rate; prev < 0
// (no previous frame) renders as a dash.
func rate(cur, prev float64, dt time.Duration) string {
	if prev < 0 || dt <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f/s", (cur-prev)/dt.Seconds())
}

// render writes one dashboard frame. prev may be nil (first frame: all
// rates render as dashes).
func render(w io.Writer, prev, cur *snapshot) {
	fmt.Fprintf(w, "fxtop — %s\n", cur.at.Format(time.RFC3339))
	if len(cur.fleets) == 0 {
		fmt.Fprintln(w, "no fleets registered at the target (is the coordinator pulling stats? see -stats-pull)")
	}
	var dt time.Duration
	if prev != nil {
		dt = cur.at.Sub(prev.at)
	}
	names := make([]string, 0, len(cur.fleets))
	for n := range cur.fleets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		rep := cur.fleets[name]
		var prevRep *fxdist.FleetReport
		if prev != nil {
			if r, ok := prev.fleets[name]; ok {
				prevRep = &r
			}
		}
		renderFleet(w, name, rep, prevRep, dt)
	}
	renderRescale(w, prev, cur, dt)
	renderResilience(w, cur.resil)
}

// renderRescale shows migration progress for every live rescale on the
// target: phase, bucket counts, and the copy rate from frame deltas.
func renderRescale(w io.Writer, prev, cur *snapshot, dt time.Duration) {
	if len(cur.rescale.Rescales) == 0 {
		return
	}
	names := make([]string, 0, len(cur.rescale.Rescales))
	for n := range cur.rescale.Rescales {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		r := cur.rescale.Rescales[name]
		prevCopied := -1.0
		if prev != nil {
			if pr, ok := prev.rescale.Rescales[name]; ok {
				prevCopied = float64(pr.Copied)
			}
		}
		line := fmt.Sprintf("\nrescale %-14s %d -> %d devices  phase %-9s %d/%d buckets (%.1f%%)  copy %s",
			name, r.OldM, r.NewM, r.Phase, r.Copied, r.TotalMoves,
			100*r.MoveFraction, rate(float64(r.Copied), prevCopied, dt))
		if r.Paused {
			line += "  [paused]"
		}
		fmt.Fprintln(w, line)
		if r.Err != "" {
			fmt.Fprintf(w, "  err: %s\n", r.Err)
		}
		if r.LastGuardErr != "" {
			fmt.Fprintf(w, "  guard: %s\n", r.LastGuardErr)
		}
	}
}

func renderFleet(w io.Writer, name string, rep fxdist.FleetReport, prev *fxdist.FleetReport, dt time.Duration) {
	alive := 0
	for _, n := range rep.Nodes {
		if n.Alive {
			alive++
		}
	}
	fmt.Fprintf(w, "\nfleet %-10s %d/%d nodes alive\n", name, alive, len(rep.Nodes))

	prevQ := -1.0
	if prev != nil {
		prevQ = float64(prev.Summary.Queries)
	}
	fmt.Fprintf(w, "  queries %-8d qps %-8s plan-cache %5.1f%%  mempool recycle %5.1f%%\n",
		rep.Summary.Queries, rate(float64(rep.Summary.Queries), prevQ, dt),
		100*rep.Summary.PlanCacheHitRate, 100*rep.Summary.MempoolRecycleRate)
	if rep.Summary.WorstDiscrepancy > 0 {
		fmt.Fprintf(w, "  worst bound discrepancy %.0f buckets (%s shape %s)\n",
			rep.Summary.WorstDiscrepancy, rep.Summary.WorstDiscrepancyNode, rep.Summary.WorstDiscrepancyShape)
	}
	if rep.Summary.WorstBurnRate > 0 {
		fmt.Fprintf(w, "  worst SLO burn %.2f (%s shape %s)\n",
			rep.Summary.WorstBurnRate, rep.Summary.WorstBurnNode, rep.Summary.WorstBurnShape)
	}

	if len(rep.Summary.QueriesByShape) > 0 {
		shapes := make([]string, 0, len(rep.Summary.QueriesByShape))
		for s := range rep.Summary.QueriesByShape {
			shapes = append(shapes, s)
		}
		sort.Strings(shapes)
		var parts []string
		for _, s := range shapes {
			prevN := -1.0
			if prev != nil {
				if pn, ok := prev.Summary.QueriesByShape[s]; ok {
					prevN = float64(pn)
				}
			}
			parts = append(parts, fmt.Sprintf("%s=%d (%s)",
				s, rep.Summary.QueriesByShape[s], rate(float64(rep.Summary.QueriesByShape[s]), prevN, dt)))
		}
		fmt.Fprintf(w, "  shapes  %s\n", strings.Join(parts, "  "))
	}

	for _, row := range latencyRows {
		for _, ms := range rep.Merged {
			if ms.Name != row.metric || ms.Histogram == nil || ms.Histogram.Count == 0 {
				continue
			}
			fmt.Fprintf(w, "  latency %-12s p50=%-10s p99=%-10s n=%d\n",
				row.label, fmtSeconds(ms.Histogram.Quantile(0.5)), fmtSeconds(ms.Histogram.Quantile(0.99)), ms.Histogram.Count)
		}
	}

	for _, n := range rep.Nodes {
		status := "alive"
		if !n.Alive {
			status = "DEAD"
		}
		line := fmt.Sprintf("  node %-12s %-5s lag=%-6s pulls=%-4d fails=%-3d errs=%-4d up=%s",
			n.Node, status, fmt.Sprintf("%.1fs", n.LagSeconds), n.Pulls, n.Failures, n.CoordErrors,
			fmt.Sprintf("%.0fs", n.UptimeSeconds))
		if n.Flagged {
			line += "  ⚠ " + n.FlagReason
		}
		fmt.Fprintln(w, line)
	}
}

func renderResilience(w io.Writer, doc resilienceDoc) {
	for _, r := range doc.Retry {
		if len(r.Breakers) == 0 && r.Retries == 0 && r.Hedges == 0 {
			continue
		}
		var parts []string
		open := 0
		for _, b := range r.Breakers {
			if b.State != "closed" {
				open++
			}
			parts = append(parts, fmt.Sprintf("dev%d=%s", b.Device, b.State))
		}
		fmt.Fprintf(w, "\nbreakers %s (%d not closed): %s  retries=%d hedges=%d partials=%d\n",
			r.Backend, open, strings.Join(parts, " "), r.Retries, r.Hedges, r.Partials)
	}
}
