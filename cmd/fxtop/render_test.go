package main

import (
	"strings"
	"testing"
	"time"

	"fxdist"
	"fxdist/internal/obs"
	"fxdist/internal/telemetry"
)

func testSnapshot(at time.Time, queries uint64) *snapshot {
	rep := fxdist.FleetReport{
		Cluster:   "netdist",
		Generated: at,
		Nodes: []telemetry.NodeRow{
			{Node: "device-0", Alive: true, Pulls: 3, UptimeSeconds: 42},
			{Node: "device-1", Alive: true, Pulls: 3, CoordErrors: 7, Flagged: true,
				FlagReason: "coordinator observed 7 new transport errors since last pull"},
			{Node: "device-2", Alive: false, Pulls: 1, Failures: 2, Err: "dial tcp: connection refused"},
		},
		Summary: telemetry.Summary{
			Queries:               queries,
			QueriesByShape:        map[string]uint64{"s**": queries - 4, "*s*": 4},
			PlanCacheHitRate:      0.75,
			WorstDiscrepancy:      1,
			WorstDiscrepancyNode:  "device-1",
			WorstDiscrepancyShape: "**s",
		},
		Merged: []telemetry.MetricSample{{
			Name: "fxdist_netdist_server_request_seconds",
			Kind: "histogram",
			Histogram: &obs.HistogramSnapshot{
				Bounds: []float64{0.001, 0.01, 0.1},
				Counts: []uint64{10, 2, 1, 0},
				Count:  13,
				Sum:    0.05,
			},
		}},
	}
	return &snapshot{
		at:     at,
		fleets: map[string]fxdist.FleetReport{"netdist": rep},
		resil: resilienceDoc{Retry: []retryRow{{
			Backend: "netdist", Retries: 5, Hedges: 1,
			Breakers: []breakerRow{{Device: 0, State: "closed"}, {Device: 1, State: "open"}},
		}}},
	}
}

// TestRenderFrame renders a merged fleet view with a flagged node, a
// dead node, shape rates and breaker states — the frame the acceptance
// cluster produces — and asserts every section shows up.
func TestRenderFrame(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	prev := testSnapshot(t0, 20)
	cur := testSnapshot(t0.Add(2*time.Second), 30)

	var b strings.Builder
	render(&b, prev, cur)
	out := b.String()

	for _, want := range []string{
		"fleet netdist",
		"2/3 nodes alive",
		"queries 30",
		"5.0/s", // qps: (30-20)/2s
		"worst bound discrepancy 1 buckets (device-1 shape **s)",
		"s**=26", "*s*=4",
		"latency server",
		"⚠ coordinator observed 7 new transport errors",
		"DEAD",
		"breakers netdist (1 not closed)",
		"dev1=open",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q\n%s", want, out)
		}
	}
}

// TestRenderFirstFrame renders without a previous snapshot: rates must
// show as dashes and nothing may panic on missing data.
func TestRenderFirstFrame(t *testing.T) {
	var b strings.Builder
	render(&b, nil, testSnapshot(time.Unix(1700000000, 0), 8))
	if !strings.Contains(b.String(), "qps -") {
		t.Errorf("first frame should dash the qps rate:\n%s", b.String())
	}
}

// TestRenderRescaleRow: a registered migration driver renders its
// progress row with a copy rate from frame deltas; guard stalls and
// pauses are called out.
func TestRenderRescaleRow(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	prev := testSnapshot(t0, 20)
	prev.rescale = rescaleDoc{Rescales: map[string]rescaleRow{
		"netdist-next": {Phase: "copying", OldM: 4, NewM: 8, TotalMoves: 64, Copied: 16, MoveFraction: 0.25},
	}}
	cur := testSnapshot(t0.Add(2*time.Second), 30)
	cur.rescale = rescaleDoc{Rescales: map[string]rescaleRow{
		"netdist-next": {Phase: "dual-read", OldM: 4, NewM: 8, TotalMoves: 64, Copied: 64,
			MoveFraction: 1, Paused: true,
			LastGuardErr: "rebalance: only 1 audited queries on the new epoch, need 4 before cutover"},
	}}

	var b strings.Builder
	render(&b, prev, cur)
	out := b.String()
	for _, want := range []string{
		"rescale netdist-next",
		"4 -> 8 devices",
		"phase dual-read",
		"64/64 buckets (100.0%)",
		"copy 24.0/s", // (64-16)/2s
		"[paused]",
		"guard: rebalance: only 1 audited queries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q\n%s", want, out)
		}
	}
	// No rescale registered: the section stays out of the frame.
	var b2 strings.Builder
	render(&b2, nil, testSnapshot(t0, 8))
	if strings.Contains(b2.String(), "rescale ") {
		t.Errorf("rescale row rendered without a registered driver:\n%s", b2.String())
	}
}

// TestRenderEmpty covers the no-fleet hint (coordinator not pulling).
func TestRenderEmpty(t *testing.T) {
	var b strings.Builder
	render(&b, nil, &snapshot{at: time.Unix(1700000000, 0)})
	if !strings.Contains(b.String(), "is the coordinator pulling stats?") {
		t.Errorf("empty frame missing the stats-pull hint:\n%s", b.String())
	}
}
