package main

import (
	"strings"
	"testing"
	"time"

	"fxdist"
	"fxdist/internal/obs"
	"fxdist/internal/telemetry"
)

func testSnapshot(at time.Time, queries uint64) *snapshot {
	rep := fxdist.FleetReport{
		Cluster:   "netdist",
		Generated: at,
		Nodes: []telemetry.NodeRow{
			{Node: "device-0", Alive: true, Pulls: 3, UptimeSeconds: 42},
			{Node: "device-1", Alive: true, Pulls: 3, CoordErrors: 7, Flagged: true,
				FlagReason: "coordinator observed 7 new transport errors since last pull"},
			{Node: "device-2", Alive: false, Pulls: 1, Failures: 2, Err: "dial tcp: connection refused"},
		},
		Summary: telemetry.Summary{
			Queries:               queries,
			QueriesByShape:        map[string]uint64{"s**": queries - 4, "*s*": 4},
			PlanCacheHitRate:      0.75,
			WorstDiscrepancy:      1,
			WorstDiscrepancyNode:  "device-1",
			WorstDiscrepancyShape: "**s",
		},
		Merged: []telemetry.MetricSample{{
			Name: "fxdist_netdist_server_request_seconds",
			Kind: "histogram",
			Histogram: &obs.HistogramSnapshot{
				Bounds: []float64{0.001, 0.01, 0.1},
				Counts: []uint64{10, 2, 1, 0},
				Count:  13,
				Sum:    0.05,
			},
		}},
	}
	return &snapshot{
		at:     at,
		fleets: map[string]fxdist.FleetReport{"netdist": rep},
		resil: resilienceDoc{Retry: []retryRow{{
			Backend: "netdist", Retries: 5, Hedges: 1,
			Breakers: []breakerRow{{Device: 0, State: "closed"}, {Device: 1, State: "open"}},
		}}},
	}
}

// TestRenderFrame renders a merged fleet view with a flagged node, a
// dead node, shape rates and breaker states — the frame the acceptance
// cluster produces — and asserts every section shows up.
func TestRenderFrame(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	prev := testSnapshot(t0, 20)
	cur := testSnapshot(t0.Add(2*time.Second), 30)

	var b strings.Builder
	render(&b, prev, cur)
	out := b.String()

	for _, want := range []string{
		"fleet netdist",
		"2/3 nodes alive",
		"queries 30",
		"5.0/s", // qps: (30-20)/2s
		"worst bound discrepancy 1 buckets (device-1 shape **s)",
		"s**=26", "*s*=4",
		"latency server",
		"⚠ coordinator observed 7 new transport errors",
		"DEAD",
		"breakers netdist (1 not closed)",
		"dev1=open",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q\n%s", want, out)
		}
	}
}

// TestRenderFirstFrame renders without a previous snapshot: rates must
// show as dashes and nothing may panic on missing data.
func TestRenderFirstFrame(t *testing.T) {
	var b strings.Builder
	render(&b, nil, testSnapshot(time.Unix(1700000000, 0), 8))
	if !strings.Contains(b.String(), "qps -") {
		t.Errorf("first frame should dash the qps rate:\n%s", b.String())
	}
}

// TestRenderEmpty covers the no-fleet hint (coordinator not pulling).
func TestRenderEmpty(t *testing.T) {
	var b strings.Builder
	render(&b, nil, &snapshot{at: time.Unix(1700000000, 0)})
	if !strings.Contains(b.String(), "is the coordinator pulling stats?") {
		t.Errorf("empty frame missing the stats-pull hint:\n%s", b.String())
	}
}
