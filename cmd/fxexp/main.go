// Command fxexp runs the paper's complete evaluation and writes every
// artifact into a results directory: Tables 7-9 and Figures 1-4 as CSV
// and JSON, the CPU cost comparison, the extension experiments (M-sweep,
// ablations), and a SUMMARY.md indexing everything — one command to
// reproduce the paper.
//
// Usage:
//
//	fxexp -out results/            # everything (exact figures included)
//	fxexp -out results/ -quick     # skip the exact-percentage figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fxdist/internal/analysis"
	"fxdist/internal/cost"
	"fxdist/internal/field"
	"fxdist/internal/report"
)

func main() {
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "skip exact optimality percentages in figures")
	flag.Parse()
	if err := run(*out, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "fxexp:", err)
		os.Exit(1)
	}
}

func run(out string, quick bool) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var index []string
	start := time.Now()

	writeBoth := func(base string, textFn func(f *os.File, format report.Format) error) error {
		for _, format := range []report.Format{report.CSV, report.JSON} {
			path := filepath.Join(out, base+"."+string(format))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := textFn(f, format); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		index = append(index, fmt.Sprintf("- `%s.csv` / `%s.json`", base, base))
		return nil
	}

	// Tables 7-9.
	for _, spec := range []analysis.TableSpec{analysis.Table7(), analysis.Table8(), analysis.Table9()} {
		spec := spec
		base := strings.ToLower(strings.ReplaceAll(spec.Name, " ", ""))
		fmt.Printf("computing %s...\n", spec.Name)
		if err := writeBoth(base, func(f *os.File, format report.Format) error {
			return report.Table(f, spec, format)
		}); err != nil {
			return err
		}
	}

	// Figures 1-4.
	for _, spec := range []analysis.FigureSpec{
		analysis.Figure1(), analysis.Figure2(), analysis.Figure3(), analysis.Figure4(),
	} {
		spec := spec
		base := strings.ToLower(strings.ReplaceAll(spec.Name, " ", ""))
		fmt.Printf("computing %s...\n", spec.Name)
		if err := writeBoth(base, func(f *os.File, format report.Format) error {
			return report.Figure(f, spec, !quick, format)
		}); err != nil {
			return err
		}
	}

	// §5.2.2 CPU cost.
	fmt.Println("computing CPU cost comparison...")
	plan := field.MustPlan([]int{8, 8, 8, 8, 8, 8}, 32,
		field.WithStrategy(field.RoundRobin), field.WithFamily(field.FamilyIU1))
	var cpuRows []cost.Comparison
	for _, cpu := range []cost.CPU{cost.MC68000, cost.I80286} {
		cpuRows = append(cpuRows, cost.Compare(cpu, plan)...)
	}
	if err := writeBoth("cpucost", func(f *os.File, format report.Format) error {
		return report.CPUCost(f, cpuRows, format)
	}); err != nil {
		return err
	}

	// Extension: M-sweep.
	fmt.Println("computing M-sweep...")
	pts, err := analysis.MSweep([]int{8, 8, 8, 8}, []int{8, 32, 128, 512}, field.FamilyIU2)
	if err != nil {
		return err
	}
	msweepPath := filepath.Join(out, "msweep.csv")
	f, err := os.Create(msweepPath)
	if err != nil {
		return err
	}
	fmt.Fprintln(f, "m,small_fields,fx_exact_pct,fx_certified_pct,md_exact_pct")
	for _, p := range pts {
		fmt.Fprintf(f, "%d,%d,%.4f,%.4f,%.4f\n", p.M, p.SmallFields, p.FXExactPct, p.FXCertifiedPct, p.ModuloExactPct)
	}
	if err := f.Close(); err != nil {
		return err
	}
	index = append(index, "- `msweep.csv` (extension: optimality vs device count)")

	// Summary.
	summary := filepath.Join(out, "SUMMARY.md")
	sf, err := os.Create(summary)
	if err != nil {
		return err
	}
	fmt.Fprintf(sf, "# fxdist evaluation artifacts\n\nGenerated in %v.\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Fprintln(sf, "Reproduces Kim & Pramanik, SIGMOD 1988 — see EXPERIMENTS.md for")
	fmt.Fprintln(sf, "paper-vs-measured notes.")
	fmt.Fprintln(sf)
	for _, line := range index {
		fmt.Fprintln(sf, line)
	}
	if err := sf.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d artifacts to %s in %v\n", len(index), out, time.Since(start).Round(time.Millisecond))
	return nil
}
