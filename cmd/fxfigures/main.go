// Command fxfigures regenerates the data series behind the paper's
// Figures 1-4: the percentage of partial match queries for which the
// Modulo (MD) and FX (FD) distributions are certified strict optimal, as
// a function of the number of fields whose sizes are less than the device
// count M.
//
// Usage:
//
//	fxfigures                    # all four figures, text
//	fxfigures -figure 3          # one figure
//	fxfigures -exact             # additionally compute exact percentages
//	fxfigures -format csv        # csv or json for plotting pipelines
package main

import (
	"flag"
	"fmt"
	"os"

	"fxdist/internal/analysis"
	"fxdist/internal/report"
)

func main() {
	figNum := flag.Int("figure", 0, "figure number to print (1-4); 0 prints all")
	exact := flag.Bool("exact", false, "also compute exact optimality percentages by convolution")
	formatArg := flag.String("format", "text", "output format: text, csv or json")
	flag.Parse()
	if *figNum < 0 || *figNum > 4 {
		fmt.Fprintln(os.Stderr, "fxfigures: -figure must be 0..4")
		os.Exit(2)
	}
	format, err := report.ParseFormat(*formatArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxfigures:", err)
		os.Exit(2)
	}
	figures := []analysis.FigureSpec{
		analysis.Figure1(), analysis.Figure2(), analysis.Figure3(), analysis.Figure4(),
	}
	for i, spec := range figures {
		if *figNum != 0 && *figNum != i+1 {
			continue
		}
		if err := report.Figure(os.Stdout, spec, *exact, format); err != nil {
			fmt.Fprintln(os.Stderr, "fxfigures:", err)
			os.Exit(1)
		}
		if format == report.Text {
			fmt.Println()
		}
	}
}
