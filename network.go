package fxdist

import "fxdist/internal/butterfly"

// ButterflyNetwork simulates the multistage interconnection network of
// the Butterfly-style machines the paper targets: M nodes, log2(M) stages
// of 2x2 switches, destination-tag routing, one message per link per
// cycle with FIFO queueing.
type ButterflyNetwork = butterfly.Network

// NetworkMessage is one unit of simulated traffic.
type NetworkMessage = butterfly.Message

// NetworkStats reports a network simulation run.
type NetworkStats = butterfly.Stats

// NewButterfly builds the interconnect for m nodes (a power of two).
func NewButterfly(m int) (*ButterflyNetwork, error) { return butterfly.New(m) }
