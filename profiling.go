package fxdist

import (
	"io"
	"time"

	"fxdist/internal/obs"
)

// Profiling: the per-query cost-attribution surface. Every retrieval on
// every backend records a stage breakdown — plan (cache hit or
// compile), fanout (the paper's max-over-devices term), merge, audit —
// with wall time and heap-allocation deltas, aggregated per (backend,
// query shape). The distributed coordinator additionally attributes the
// wire path (dispatch → first byte → decode, with wire byte counts).
// The same data is served on /debug/hotpath; the slowest queries per
// shape are retained with full evidence on /debug/flight; and an
// optional trigger captures pprof profiles when an SLO burn rate or
// latency threshold trips (/debug/profiles).

// StageSample is one stage measurement of one query (see
// RetrieveResult.Stages): wall time plus heap-allocation deltas for
// engine stages, wire bytes for the coordinator's net.* stages.
type StageSample = obs.StageSample

// Stage names of the cost breakdown. The four top-level stages
// partition a retrieval (their wall times sum to the query latency);
// the device.scan and net.* stages overlap fanout and refine it.
const (
	StagePlan        = obs.StagePlan
	StageFanout      = obs.StageFanout
	StageMerge       = obs.StageMerge
	StageAudit       = obs.StageAudit
	StageDeviceScan  = obs.StageDeviceScan
	StageNetDispatch = obs.StageNetDispatch
	StageNetWait     = obs.StageNetWait
	StageNetDecode   = obs.StageNetDecode
)

// StageCost is one aggregated stage of one query shape's cost profile.
type StageCost = obs.StageCost

// ShapeCost is one query shape's aggregated cost profile.
type ShapeCost = obs.ShapeCost

// BackendCost is every profiled query shape of one backend.
type BackendCost = obs.BackendCost

// CostReport snapshots every backend's per-shape cost profile, sorted
// by backend — the programmatic /debug/hotpath.
func CostReport() []BackendCost { return obs.CostReport() }

// WriteCostReport renders a cost report as an aligned text table (the
// /debug/hotpath?format=text rendering).
func WriteCostReport(w io.Writer, report []BackendCost) { obs.WriteCostReport(w, report) }

// ResetCostProfilers zeroes every backend's accumulated cost profile.
func ResetCostProfilers() { obs.ResetCostProfilers() }

// CostReport snapshots this cluster's backend-kind cost profile.
func (c *Cluster) CostReport() BackendCost {
	return obs.CostProfilerFor(c.kind).Report()
}

// FlightDevice is one device's share of a recorded slow query.
type FlightDevice = obs.FlightDevice

// FlightRecord is one retained slow query: stage breakdown, span
// events (retry/hedge/breaker decisions), plan-cache hit/miss, and
// per-device bucket counts against the strict bound ceil(|R(q)|/M).
type FlightRecord = obs.FlightRecord

// ShapeFlights is one query shape's retained records, slowest first.
type ShapeFlights = obs.ShapeFlights

// BackendFlights is every shape one backend's flight recorder holds.
type BackendFlights = obs.BackendFlights

// FlightReport snapshots every backend's slow-query flight recorder,
// sorted by backend — the programmatic /debug/flight.
func FlightReport() []BackendFlights { return obs.FlightReport() }

// WriteFlightReport renders a flight report as text, one block per
// record, slowest first (the /debug/flight?format=text rendering).
func WriteFlightReport(w io.Writer, report []BackendFlights) { obs.WriteFlightReport(w, report) }

// ResetFlightRecorders clears every backend's retained flight records.
func ResetFlightRecorders() { obs.ResetFlightRecorders() }

// FlightReport snapshots this cluster's backend-kind flight recorder.
func (c *Cluster) FlightReport() BackendFlights {
	return obs.FlightRecorderFor(c.kind).Report()
}

// TriggeredProfilingConfig bounds automatic pprof capture: when a query
// shape's SLO burn rate reaches BurnThreshold, or a single query's
// latency reaches LatencyThreshold, a CPU+heap profile pair is spooled
// to Dir. Captures are rate-limited (MinInterval apart, MaxCaptures
// total, one at a time). Zero-valued fields take defaults (2s CPU
// profile, 1m interval, 16 captures, a temp spool dir); both
// thresholds <= 0 means nothing ever trips.
type TriggeredProfilingConfig struct {
	Dir              string
	CPUDuration      time.Duration
	MinInterval      time.Duration
	MaxCaptures      int
	BurnThreshold    float64
	LatencyThreshold time.Duration
}

// ProfileCapture describes one completed (or failed) triggered capture.
type ProfileCapture = obs.ProfileCapture

// EnableTriggeredProfiling installs the process-wide profile trigger;
// captures surface on /debug/profiles and in TriggeredProfiles. It
// replaces any previously installed trigger.
func EnableTriggeredProfiling(cfg TriggeredProfilingConfig) {
	obs.SetProfileTrigger(obs.NewProfileTrigger(obs.ProfileTriggerConfig{
		Dir:              cfg.Dir,
		CPUDuration:      cfg.CPUDuration,
		MinInterval:      cfg.MinInterval,
		MaxCaptures:      cfg.MaxCaptures,
		BurnThreshold:    cfg.BurnThreshold,
		LatencyThreshold: cfg.LatencyThreshold,
	}))
}

// DisableTriggeredProfiling removes the process-wide profile trigger,
// waits for any in-flight capture to finish, and returns the trigger's
// completed captures (nil when none was installed).
func DisableTriggeredProfiling() []ProfileCapture {
	t := obs.SetProfileTrigger(nil)
	t.Wait()
	return t.Captures()
}

// TriggeredProfiles lists completed triggered captures, most recent
// first; nil when triggered profiling is off.
func TriggeredProfiles() []ProfileCapture {
	return obs.ActiveProfileTrigger().Captures()
}
