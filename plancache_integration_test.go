package fxdist_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"fxdist"
)

// planCacheFile builds a loaded file with an FX allocator for the
// plan-cache tests.
func planCacheFile(t *testing.T, m int) (*fxdist.File, fxdist.GroupAllocator, fxdist.RecordSpec) {
	t.Helper()
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "part", Cardinality: 300},
		{Name: "supplier", Cardinality: 50},
		{Name: "warehouse", Cardinality: 10},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{4, 3, 2}))
	if err != nil {
		t.Fatal(err)
	}
	records, err := fxdist.GenerateRecords(spec, 1500, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := file.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := file.FileSystem(m)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	return file, fx, spec
}

// TestPlanCacheDifferentialAcrossBackends opens every backend kind twice
// — plan cache enabled and disabled — and asserts each query returns
// byte-identical records in identical order, with identical per-device
// bucket counts. The cached path substitutes compiled tuple lists for
// the per-call inverse-mapper walk; any enumeration-order divergence
// between the two would surface here.
func TestPlanCacheDifferentialAcrossBackends(t *testing.T) {
	file, fx, spec := planCacheFile(t, 8)
	pms, err := fxdist.GeneratePartialMatches(spec, 20, 0.45, 32)
	if err != nil {
		t.Fatal(err)
	}

	addrs, stop, err := fxdist.DeployLocal(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	open := func(disable bool, cfg fxdist.Config, opts ...fxdist.Option) *fxdist.Cluster {
		t.Helper()
		if disable {
			opts = append(opts, fxdist.WithoutPlanCache())
		}
		c, err := fxdist.Open(cfg, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	kinds := []struct {
		name string
		cfg  func() fxdist.Config // fresh per cluster (durable needs its own dir)
		opts []fxdist.Option
	}{
		{"memory", func() fxdist.Config { return fxdist.Config{File: file, Allocator: fx} }, nil},
		{"durable", func() fxdist.Config {
			return fxdist.Config{Dir: t.TempDir(), File: file, Allocator: fx}
		}, nil},
		{"replicated", func() fxdist.Config { return fxdist.Config{File: file, Allocator: fx} },
			[]fxdist.Option{fxdist.WithReplication(fxdist.ChainedFailover)}},
		{"netdist", func() fxdist.Config { return fxdist.Config{File: file, Addrs: addrs} }, nil},
	}
	for _, k := range kinds {
		cached := open(false, k.cfg(), k.opts...)
		uncached := open(true, k.cfg(), k.opts...)
		if got := uncached.PlanCache(); got.Enabled {
			t.Fatalf("%s: WithoutPlanCache left the cache enabled", k.name)
		}
		for qi, pm := range pms {
			a, err := cached.Retrieve(pm)
			if err != nil {
				t.Fatalf("%s query %d cached: %v", k.name, qi, err)
			}
			b, err := uncached.Retrieve(pm)
			if err != nil {
				t.Fatalf("%s query %d uncached: %v", k.name, qi, err)
			}
			if len(a.Records) != len(b.Records) {
				t.Fatalf("%s query %d: %d records cached, %d uncached",
					k.name, qi, len(a.Records), len(b.Records))
			}
			for i := range a.Records {
				for f := range a.Records[i] {
					if a.Records[i][f] != b.Records[i][f] {
						t.Fatalf("%s query %d record %d differs: %v vs %v",
							k.name, qi, i, a.Records[i], b.Records[i])
					}
				}
			}
			for d := range a.DeviceBuckets {
				if a.DeviceBuckets[d] != b.DeviceBuckets[d] {
					t.Fatalf("%s query %d device %d: %d buckets cached, %d uncached",
						k.name, qi, d, a.DeviceBuckets[d], b.DeviceBuckets[d])
				}
			}
		}
		if stats := cached.PlanCache(); stats.Hits == 0 {
			t.Errorf("%s: cache saw no hits over a repeated workload: %+v", k.name, stats)
		}
	}
}

// TestPlanCacheInvalidationOnAllocatorRebuild proves a rebuilt allocator
// never reuses stale plans: after a snapshot round trip the restored
// allocator has a new cache identity, so the same shape compiles fresh
// and still answers correctly.
func TestPlanCacheInvalidationOnAllocatorRebuild(t *testing.T) {
	file, fx, _ := planCacheFile(t, 4)
	pm, err := file.Spec(map[string]string{"supplier": "supplier-3"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := file.Search(pm)
	if err != nil {
		t.Fatal(err)
	}

	c1, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c1.Retrieve(pm); err != nil {
			t.Fatal(err)
		}
	}
	s1 := c1.PlanCache()
	if s1.Misses != 1 || s1.Hits != 2 || len(s1.Plans) != 1 {
		t.Fatalf("first cluster cache: %+v, want 1 miss / 2 hits / 1 plan", s1)
	}

	path := t.TempDir() + "/file.snap"
	if err := fxdist.SaveSnapshotFile(path, file, fx); err != nil {
		t.Fatal(err)
	}
	restored, alloc2, err := fxdist.LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := fxdist.Open(fxdist.Config{File: restored, Allocator: alloc2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want) {
		t.Fatalf("rebuilt allocator returned %d records, want %d", len(got.Records), len(want))
	}
	s2 := c2.PlanCache()
	if s2.Misses != 1 || s2.Hits != 0 || len(s2.Plans) != 1 {
		t.Fatalf("rebuilt cluster cache: %+v, want a fresh compile (1 miss / 0 hits)", s2)
	}
	if s1.Plans[0].Owner == s2.Plans[0].Owner {
		t.Errorf("rebuilt allocator kept cache identity %d; plans could alias across rebuilds",
			s2.Plans[0].Owner)
	}
}

// TestPlanCacheHitRateIntegration drives a repeated-shape workload and
// asserts the cache absorbs it: >90%% hit rate on the cluster's own
// snapshot, matching counters on the /metrics scrape, and a well-formed
// /debug/plancache report. CI uploads that JSON as a build artifact when
// PLANCACHE_JSON names a destination.
func TestPlanCacheHitRateIntegration(t *testing.T) {
	srv := httptest.NewServer(fxdist.MetricsHandler())
	defer srv.Close()

	file, fx, spec := planCacheFile(t, 8)
	c, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx})
	if err != nil {
		t.Fatal(err)
	}
	before := scrapeMetrics(t, srv.URL+"/metrics")

	// 8 distinct queries cycled 25 rounds: every shape compiles once and
	// hits thereafter.
	pms, err := fxdist.GeneratePartialMatches(spec, 8, 0.5, 33)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 25
	for i := 0; i < rounds; i++ {
		for _, pm := range pms {
			if _, err := c.Retrieve(pm); err != nil {
				t.Fatal(err)
			}
		}
	}

	stats := c.PlanCache()
	if total := stats.Hits + stats.Misses; total != rounds*uint64(len(pms)) {
		t.Fatalf("cache saw %d lookups, want %d", total, rounds*len(pms))
	}
	if stats.HitRate <= 0.9 {
		t.Fatalf("hit rate %.3f (hits=%d misses=%d), want > 0.9",
			stats.HitRate, stats.Hits, stats.Misses)
	}

	after := scrapeMetrics(t, srv.URL+"/metrics")
	hitKey := `fxdist_plancache_hit_total{cache="memory"}`
	missKey := `fxdist_plancache_miss_total{cache="memory"}`
	if d := after[hitKey] - before[hitKey]; d != float64(stats.Hits) {
		t.Errorf("%s advanced by %g, cluster counted %d hits", hitKey, d, stats.Hits)
	}
	if d := after[missKey] - before[missKey]; d != float64(stats.Misses) {
		t.Errorf("%s advanced by %g, cluster counted %d misses", missKey, d, stats.Misses)
	}

	resp, err := http.Get(srv.URL + "/debug/plancache")
	if err != nil {
		t.Fatalf("GET /debug/plancache: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("read /debug/plancache: status %d, %v", resp.StatusCode, err)
	}
	var report []fxdist.PlanCacheStats
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("/debug/plancache is not plan-cache JSON: %v\n%s", err, raw)
	}
	var found bool
	for _, snap := range report {
		if snap.Backend == "memory" && snap.Hits == stats.Hits && snap.Misses == stats.Misses {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("/debug/plancache lists no memory cache matching hits=%d misses=%d:\n%s",
			stats.Hits, stats.Misses, raw)
	}
	if path := os.Getenv("PLANCACHE_JSON"); path != "" {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatalf("write PLANCACHE_JSON: %v", err)
		}
		t.Logf("plan cache report written to %s", path)
	}
}
