package fxdist_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"fxdist"
	"fxdist/internal/netdist"
	"fxdist/internal/obs"
	"fxdist/internal/resilience"
	"fxdist/internal/telemetry"
)

// buildTelemetryFile returns a file whose Modulo allocation provably
// violates the strict bound: sizes [2,2,4] on M=4 devices means a query
// specifying only the third field qualifies the 4 buckets {(i,j,z)},
// whose Modulo devices (i+j+z) mod 4 are {z, z+1, z+1, z+2} — one
// device gets 2 buckets against bound ceil(4/4)=1, for every z.
func buildTelemetryFile(t *testing.T) (*fxdist.File, *fxdist.Modulo) {
	t.Helper()
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "x", Cardinality: 8},
		{Name: "y", Cardinality: 8},
		{Name: "z", Cardinality: 16},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{1, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := fxdist.GenerateRecords(spec, 96, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := file.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := file.FileSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	return file, fxdist.NewModulo(fs)
}

// TestClusterTelemetryPlane runs the telemetry plane end to end on a
// real multi-node cluster with an injected fault: per-node registries
// federated over the wire into one /debug/cluster view whose per-shape
// counts must equal the sum of the per-node counters, the faulted node
// flagged, and a bound-violating Modulo query always kept in the wide-
// event log — with its full trace tree recoverable through the latency
// histogram's exemplar — even at 1% uniform sampling.
func TestClusterTelemetryPlane(t *testing.T) {
	// <10% sampling: no head-keep, 1-in-100 uniform. Always-keep rules
	// are the only way an event survives in a short test.
	ev := telemetry.LogFor("netdist")
	ev.Reset()
	ev.Configure(telemetry.Config{Capacity: 256, HeadPerShape: 0, SampleEvery: 100})
	t.Cleanup(func() {
		ev.Configure(telemetry.DefaultEventConfig)
		ev.Reset()
	})
	tracer := obs.DefaultTracer()
	tracer.SetRetention(256, 0) // always-keep only: exemplars stay deterministic
	t.Cleanup(func() { tracer.SetRetention(obs.DefaultRetainedTraces, obs.DefaultSampleEvery) })

	file, alloc := buildTelemetryFile(t)
	allocSpec, err := fxdist.DescribeAllocator(alloc)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := fxdist.PartitionFile(file, alloc)
	if err != nil {
		t.Fatal(err)
	}

	// One server per device, each with its own private registry — the
	// only route its counters have into the test's assertions is the
	// stats pull over the wire.
	const m = 4
	addrs := make([]string, m)
	regs := make([]*obs.Registry, m)
	for dev := 0; dev < m; dev++ {
		srv, err := fxdist.NewDeviceServer(dev, allocSpec, parts[dev])
		if err != nil {
			t.Fatal(err)
		}
		regs[dev] = obs.NewRegistry()
		srv.UseRegistry(regs[dev])
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[dev] = l.Addr().String()
		go srv.Serve(l) //nolint:errcheck // closed at test end
		defer srv.Close()
	}

	inj := resilience.NewInjector("telemetry-itest", 1, map[int]resilience.Schedule{})
	coord, err := netdist.Dial(file, addrs,
		netdist.WithInjector(inj), netdist.WithFleetName("telemetry-itest"))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()

	// Baseline pull so the fault below shows up as error *growth*.
	if err := coord.PullStats(ctx); err != nil {
		t.Fatalf("baseline stats pull: %v", err)
	}

	// Healthy traffic: 5 queries of shape s** — all below the sampling
	// floor, so none should be kept.
	pmX, err := file.Spec(map[string]string{"x": "x-1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := coord.RetrieveContext(ctx, pmX); err != nil {
			t.Fatalf("healthy query %d: %v", i, err)
		}
	}

	// Chaos: partition device 2 at the coordinator seam and keep
	// querying. The retrievals fail (no retry/failover configured), the
	// coordinator's per-device error counters grow.
	inj.Set(2, resilience.Schedule{Partition: true})
	pmY, err := file.Spec(map[string]string{"y": "y-2"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := coord.RetrieveContext(ctx, pmY); err == nil {
			t.Fatalf("query %d against partitioned device 2 unexpectedly succeeded", i)
		}
	}

	// The pull itself bypasses the injector (an overloaded or faulted
	// node's telemetry is exactly what the fleet view needs), so it
	// succeeds — the node is flagged by coordinator-observed error
	// growth instead.
	if err := coord.PullStats(ctx); err != nil {
		t.Fatalf("stats pull during fault: %v", err)
	}
	rep := coord.Federator().Report()
	for _, n := range rep.Nodes {
		if n.Node == "device-2" {
			if !n.Flagged {
				t.Errorf("device-2 not flagged after injected faults: %+v", n)
			}
		} else if n.Flagged {
			t.Errorf("%s flagged without faults: %q", n.Node, n.FlagReason)
		}
		if !n.Alive {
			t.Errorf("%s reported dead; stats pulls bypass the injector", n.Node)
		}
	}

	// The fleet view is served on /debug/cluster exactly as fxtop
	// consumes it: fetch it over HTTP and decode through the facade type.
	httpAddr, stopMetrics, err := fxdist.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stopMetrics()
	resp, err := http.Get("http://" + httpAddr + "/debug/cluster?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var fleets map[string]fxdist.FleetReport
	err = json.NewDecoder(resp.Body).Decode(&fleets)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode /debug/cluster: %v", err)
	}
	cluster, ok := fleets["telemetry-itest"]
	if !ok {
		t.Fatalf("/debug/cluster missing fleet telemetry-itest (have %d fleets)", len(fleets))
	}
	flagged := false
	for _, n := range cluster.Nodes {
		flagged = flagged || (n.Node == "device-2" && n.Flagged)
	}
	if !flagged {
		t.Error("/debug/cluster does not flag device-2")
	}

	// Heal the partition and run the bound-violating query last, so its
	// exemplar owns its latency bucket.
	inj.Clear(2)
	pmZ, err := file.Spec(map[string]string{"z": "z-3"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.RetrieveContext(ctx, pmZ)
	if err != nil {
		t.Fatalf("bound-violating query: %v", err)
	}

	// Final pull, then the federation invariant: the merged per-shape
	// counts must equal the sum of the per-node counters, read straight
	// out of each server's private registry.
	if err := coord.PullStats(ctx); err != nil {
		t.Fatalf("final stats pull: %v", err)
	}
	rep = coord.Federator().Report()
	perNode := make(map[string]uint64)
	var perNodeTotal uint64
	for dev, reg := range regs {
		for _, p := range reg.Snapshot() {
			if p.Name != "fxdist_netdist_server_shape_requests_total" {
				continue
			}
			var shape string
			for _, l := range p.Labels {
				if l.Key == "shape" {
					shape = l.Value
				}
			}
			if shape == "" {
				t.Fatalf("device %d: shape counter without shape label", dev)
			}
			perNode[shape] += uint64(p.Value)
			perNodeTotal += uint64(p.Value)
		}
	}
	if len(perNode) == 0 {
		t.Fatal("no per-node shape counters recorded")
	}
	if len(rep.Summary.QueriesByShape) != len(perNode) {
		t.Errorf("merged shapes %v, per-node shapes %v", rep.Summary.QueriesByShape, perNode)
	}
	for shape, want := range perNode {
		if got := rep.Summary.QueriesByShape[shape]; got != want {
			t.Errorf("shape %s: merged count %d, per-node sum %d", shape, got, want)
		}
	}
	if rep.Summary.Queries != perNodeTotal {
		t.Errorf("merged total %d, per-node sum %d", rep.Summary.Queries, perNodeTotal)
	}

	// The bound-violating query must be in the event log despite the 1%
	// sampling floor, kept for the bound reason...
	var bound *telemetry.Event
	recent := ev.Recent(256)
	for i := range recent {
		if recent[i].BoundViolation {
			bound = &recent[i]
			break
		}
	}
	if bound == nil {
		t.Fatal("bound-violating query not kept in the event log")
	}
	keep := fmt.Sprintf("%v", bound.Keep)
	if !containsString(bound.Keep, obs.KeepBound) {
		t.Errorf("bound event kept for %s, want %q", keep, obs.KeepBound)
	}
	if bound.Bound != 1 || bound.MaxDeviceBuckets < 2 {
		t.Errorf("bound event: bound=%d max=%d, want bound 1 violated", bound.Bound, bound.MaxDeviceBuckets)
	}
	if bound.TraceID == 0 || bound.TraceID != res.TraceID {
		t.Errorf("bound event trace id %d, result trace id %d", bound.TraceID, res.TraceID)
	}
	// ...while the sub-floor healthy shape was sampled out entirely.
	for _, e := range recent {
		if e.Shape == "s**" {
			t.Errorf("shape s** event kept (%v) below the sampling floor", e.Keep)
		}
	}

	// Exemplar loop: latency bucket → trace ID → retained tree.
	tid := bound.TraceID
	var exemplarHit bool
	for _, p := range obs.Default().Snapshot() {
		if p.Name != "fxdist_netdist_coordinator_retrieve_seconds" || p.Histogram == nil {
			continue
		}
		for _, ex := range p.Histogram.Exemplars {
			if ex != nil && ex.TraceID == tid {
				exemplarHit = true
			}
		}
	}
	if !exemplarHit {
		t.Error("no latency histogram exemplar points at the bound-violating trace")
	}
	rt, ok := tracer.RetainedTrace(tid)
	if !ok {
		t.Fatalf("trace %d not retained", tid)
	}
	if rt.Reason != obs.KeepBound {
		t.Errorf("trace %d retained for %q, want %q", tid, rt.Reason, obs.KeepBound)
	}
	if rt.Root.TraceID != tid {
		t.Errorf("retained tree root trace id %d, want %d", rt.Root.TraceID, tid)
	}
}

func containsString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestDebugEndpointsServeBothFormats walks the /debug/ index and
// scrapes every endpoint in both renderings: ?format=json must return
// 200 with a valid JSON document, ?format=text must return 200. This is
// the CI telemetry job's in-process half.
func TestDebugEndpointsServeBothFormats(t *testing.T) {
	addr, stop, err := fxdist.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	client := http.Client{Timeout: 10 * time.Second}
	for _, ep := range obs.DebugEndpoints() {
		if ep.Path == "/debug/pprof/" {
			// The pprof mux ignores format params; reachability is enough.
			resp, err := client.Get("http://" + addr + ep.Path)
			if err != nil {
				t.Fatalf("GET %s: %v", ep.Path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("GET %s: %s", ep.Path, resp.Status)
			}
			continue
		}
		if ep.Path == "/metrics" {
			continue // Prometheus text only; linted separately below
		}
		if ep.Path == "/debug/profiles/" {
			continue // parameterized download route: 404 without a capture name
		}
		for _, format := range []string{"json", "text"} {
			url := "http://" + addr + ep.Path + "?format=" + format
			resp, err := client.Get(url)
			if err != nil {
				t.Fatalf("GET %s: %v", url, err)
			}
			if resp.StatusCode != http.StatusOK {
				resp.Body.Close()
				t.Errorf("GET %s: %s", url, resp.Status)
				continue
			}
			if format == "json" {
				var doc any
				if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
					t.Errorf("GET %s: invalid JSON: %v", url, err)
				}
			}
			resp.Body.Close()
		}
	}
}

// TestPrometheusHelpTypeLint asserts every sample family in the
// /metrics exposition is preceded by its # HELP and # TYPE headers —
// the lint half of the CI telemetry job.
func TestPrometheusHelpTypeLint(t *testing.T) {
	// Touch a few instruments so the exposition is non-trivial.
	obs.Default().Counter("fxdist_lint_probe_total", "Lint probe.").Inc()
	addr, stop, err := fxdist.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	problems := lintPrometheus(t, resp.Body)
	for _, p := range problems {
		t.Error(p)
	}
}

func lintPrometheus(t *testing.T, r io.Reader) []string {
	t.Helper()
	var problems []string
	helped := map[string]bool{}
	typed := map[string]bool{}
	seen := map[string]bool{}
	var samples []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if name, ok := cutPrefixWord(line, "# HELP "); ok {
			helped[name] = true
			continue
		}
		if name, ok := cutPrefixWord(line, "# TYPE "); ok {
			typed[name] = true
			continue
		}
		if line[0] == '#' {
			continue
		}
		name := line
		for i := 0; i < len(name); i++ {
			if name[i] == '{' || name[i] == ' ' {
				name = name[:i]
				break
			}
		}
		// _bucket/_sum/_count samples belong to their histogram family.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := name
			if len(name) > len(suf) && name[len(name)-len(suf):] == suf && typed[name[:len(name)-len(suf)]] {
				base = name[:len(name)-len(suf)]
			}
			if base != name {
				name = base
				break
			}
		}
		if !seen[name] {
			seen[name] = true
			samples = append(samples, name)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("empty /metrics exposition")
	}
	for _, name := range samples {
		if !helped[name] {
			problems = append(problems, "metric "+name+" has no # HELP line")
		}
		if !typed[name] {
			problems = append(problems, "metric "+name+" has no # TYPE line")
		}
	}
	return problems
}

func cutPrefixWord(line, prefix string) (string, bool) {
	if len(line) < len(prefix) || line[:len(prefix)] != prefix {
		return "", false
	}
	rest := line[len(prefix):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == ' ' {
			return rest[:i], true
		}
	}
	return rest, true
}
