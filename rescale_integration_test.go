package fxdist_test

import (
	"context"
	"net"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fxdist"
)

// deployRescaleTargets starts empty device servers for devices
// firstDev..spec.M-1 at the given epoch — the fresh half of a growing
// cluster.
func deployRescaleTargets(t *testing.T, spec fxdist.AllocatorSpec, firstDev, epoch int) (addrs []string, stop func()) {
	t.Helper()
	var servers []*fxdist.DeviceServer
	stop = func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for dev := firstDev; dev < spec.M; dev++ {
		srv, err := fxdist.NewRescaleTargetServer(dev, spec, epoch)
		if err != nil {
			stop()
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, l.Addr().String())
		go srv.Serve(l) //nolint:errcheck // ends when srv.Close closes l
	}
	return addrs, stop
}

// rescaleQueries builds a few partial matches of different shapes.
func rescaleQueries(t *testing.T, file *fxdist.File) []fxdist.PartialMatch {
	t.Helper()
	var pms []fxdist.PartialMatch
	for _, pairs := range []map[string]string{
		{"b": "b-3"},
		{"a": "a-7"},
		{"a": "a-12", "b": "b-1"},
		{"b": "b-9"},
	} {
		pm, err := file.Spec(pairs)
		if err != nil {
			t.Fatal(err)
		}
		pms = append(pms, pm)
	}
	return pms
}

// canonical returns the records in a canonical, comparable form.
func canonical(recs []fxdist.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = strings.Join(r, "\x00")
	}
	sort.Strings(out)
	return out
}

func runRescale(t *testing.T, oldM, newM int) {
	t.Helper()
	file := buildTestFile(t)
	fs, err := file.FileSystem(oldM)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	addrs, stopOld, err := fxdist.DeployLocal(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stopOld()

	spec, err := fxdist.DescribeAllocator(fx)
	if err != nil {
		t.Fatal(err)
	}
	newSpec, err := spec.Rescaled(newM)
	if err != nil {
		t.Fatal(err)
	}
	newAddrs := append([]string(nil), addrs...)
	if newM > oldM {
		taddrs, stopTargets := deployRescaleTargets(t, newSpec, oldM, 1)
		defer stopTargets()
		newAddrs = append(newAddrs, taddrs...)
	} else {
		newAddrs = newAddrs[:newM]
	}

	cl, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs},
		fxdist.WithRescale(filepath.Join(t.TempDir(), "rescale.journal")))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	pms := rescaleQueries(t, file)

	// Query continuously through the whole rescale: the acceptance bar is
	// zero failed retrievals across every phase transition.
	var failed atomic.Int64
	var queries atomic.Int64
	stopPump := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopPump:
				return
			default:
			}
			if _, err := cl.Retrieve(pms[i%len(pms)]); err != nil {
				failed.Add(1)
				t.Errorf("query failed mid-rescale: %v", err)
			}
			queries.Add(1)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	resc, err := cl.Rescale(ctx, fxdist.RescaleConfig{
		Addrs:           newAddrs,
		NewM:            newM,
		Allocator:       fx,
		GuardMinQueries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := resc.Wait(); err != nil {
		t.Fatalf("rescale: %v (status %+v)", err, resc.Status())
	}
	close(stopPump)
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d of %d queries failed during the rescale", n, queries.Load())
	}
	if got := cl.M(); got != newM {
		t.Fatalf("cluster reports M=%d after rescale, want %d", got, newM)
	}
	st := resc.Status()
	if st.Phase != "done" {
		t.Fatalf("final phase %q, want done", st.Phase)
	}
	if st.DualReads.Mismatches != 0 {
		t.Fatalf("%d dual-read mismatches", st.DualReads.Mismatches)
	}

	// Byte-identical against a statically deployed newM cluster.
	staticAlloc, err := fxdist.BuildAllocator(newSpec)
	if err != nil {
		t.Fatal(err)
	}
	saddrs, stopStatic, err := fxdist.DeployLocal(file, staticAlloc)
	if err != nil {
		t.Fatal(err)
	}
	defer stopStatic()
	scl, err := fxdist.Open(fxdist.Config{File: file, Addrs: saddrs})
	if err != nil {
		t.Fatal(err)
	}
	defer scl.Close()
	for i, pm := range pms {
		got, err := cl.Retrieve(pm)
		if err != nil {
			t.Fatalf("post-rescale query %d: %v", i, err)
		}
		want, err := scl.Retrieve(pm)
		if err != nil {
			t.Fatal(err)
		}
		g, w := canonical(got.Records), canonical(want.Records)
		if len(g) != len(w) {
			t.Fatalf("query %d: %d records after rescale, static cluster has %d", i, len(g), len(w))
		}
		for j := range g {
			if g[j] != w[j] {
				t.Fatalf("query %d record %d differs:\n rescaled: %q\n static:   %q", i, j, g[j], w[j])
			}
		}
	}
}

func TestRescaleGrowLive(t *testing.T) {
	runRescale(t, 4, 8)
}

// TestRescaleGrowUnderFaults injects flapping and latency into the new
// epoch's coordinator — the same connections the migration stream and
// the dual-read new leg use — and requires the rescale to complete with
// zero failed queries and byte-identical results anyway: the driver
// retries transient faults and a dual read survives its new leg dying
// because the old epoch still answers.
func TestRescaleGrowUnderFaults(t *testing.T) {
	file := buildTestFile(t)
	fs, _ := file.FileSystem(4)
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	addrs, stopOld, err := fxdist.DeployLocal(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stopOld()
	spec, _ := fxdist.DescribeAllocator(fx)
	newSpec, err := spec.Rescaled(8)
	if err != nil {
		t.Fatal(err)
	}
	taddrs, stopTargets := deployRescaleTargets(t, newSpec, 4, 1)
	defer stopTargets()

	// The retry budget is part of the cluster's dial options, so the
	// new-epoch coordinator inherits it — injected faults on the new
	// read leg are retried, not surfaced.
	cl, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs},
		fxdist.WithRetryBudget(5, time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	pms := rescaleQueries(t, file)
	var failed atomic.Int64
	stopPump := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopPump:
				return
			default:
			}
			if _, err := cl.Retrieve(pms[i%len(pms)]); err != nil {
				failed.Add(1)
				t.Errorf("query failed mid-rescale under faults: %v", err)
			}
		}
	}()

	in := fxdist.NewFaultInjector("chaos-rescale", 7, map[int]fxdist.FaultSchedule{
		5: {FlapEvery: 3},
		2: {Latency: 2 * time.Millisecond},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	resc, err := cl.Rescale(ctx, fxdist.RescaleConfig{
		Addrs:           append(append([]string(nil), addrs...), taddrs...),
		NewM:            8,
		Allocator:       fx,
		GuardMinQueries: 2,
		DialOptions:     []fxdist.DialOption{fxdist.WithDialInjector(in)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := resc.Wait(); err != nil {
		t.Fatalf("rescale under faults: %v (status %+v)", err, resc.Status())
	}
	close(stopPump)
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d queries failed during the faulted rescale", n)
	}
	if st := resc.Status(); st.DualReads.Mismatches != 0 {
		t.Fatalf("%d dual-read mismatches", st.DualReads.Mismatches)
	}

	// Byte-identical against a static 8-device deployment.
	staticAlloc, err := fxdist.BuildAllocator(newSpec)
	if err != nil {
		t.Fatal(err)
	}
	saddrs, stopStatic, err := fxdist.DeployLocal(file, staticAlloc)
	if err != nil {
		t.Fatal(err)
	}
	defer stopStatic()
	scl, err := fxdist.Open(fxdist.Config{File: file, Addrs: saddrs})
	if err != nil {
		t.Fatal(err)
	}
	defer scl.Close()
	for i, pm := range pms {
		got, _ := cl.Retrieve(pm)
		want, _ := scl.Retrieve(pm)
		g, w := canonical(got.Records), canonical(want.Records)
		if strings.Join(g, "\n") != strings.Join(w, "\n") {
			t.Fatalf("query %d: records differ from static cluster after faulted rescale", i)
		}
	}
}

func TestRescaleShrinkLive(t *testing.T) {
	runRescale(t, 4, 2)
}

func TestRescaleAbortRollsBack(t *testing.T) {
	file := buildTestFile(t)
	fs, _ := file.FileSystem(4)
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		t.Fatal(err)
	}
	addrs, stopOld, err := fxdist.DeployLocal(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stopOld()
	spec, _ := fxdist.DescribeAllocator(fx)
	newSpec, err := spec.Rescaled(8)
	if err != nil {
		t.Fatal(err)
	}
	taddrs, stopTargets := deployRescaleTargets(t, newSpec, 4, 1)
	defer stopTargets()

	cl, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	resc, err := cl.Rescale(ctx, fxdist.RescaleConfig{
		Addrs:     append(append([]string(nil), addrs...), taddrs...),
		NewM:      8,
		Allocator: fx,
		// An unmeetable floor keeps the driver parked in dual-read so the
		// abort lands before cutover.
		GuardMinQueries: 1 << 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the copy phase to finish, then abort.
	deadline := time.Now().Add(30 * time.Second)
	for resc.Status().Phase != "dual-read" {
		if time.Now().After(deadline) {
			t.Fatalf("rescale never reached dual-read: %+v", resc.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Hammer retrievals across the abort: the rollback must never fail
	// a query — a dual read racing the route flip has to fall back to
	// the old epoch, not chase the new epoch's dropped views.
	pmsLive := rescaleQueries(t, file)
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	var hammer sync.WaitGroup
	for g := 0; g < 4; g++ {
		hammer.Add(1)
		go func(g int) {
			defer hammer.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.Retrieve(pmsLive[(g+i)%len(pmsLive)]); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(g)
	}
	resc.Abort()
	if err := resc.Wait(); err == nil {
		t.Fatal("aborted rescale reported success")
	}
	close(stop)
	hammer.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("query failed during abort rollback: %v", err)
	default:
	}
	if got := cl.M(); got != 4 {
		t.Fatalf("cluster reports M=%d after abort, want 4", got)
	}
	// The old epoch answers exactly as before.
	pms := rescaleQueries(t, file)
	for i, pm := range pms {
		got, err := cl.Retrieve(pm)
		if err != nil {
			t.Fatalf("query %d after abort: %v", i, err)
		}
		want, err := file.Search(pm)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Records) != len(want) {
			t.Fatalf("query %d: %d records after abort, want %d", i, len(got.Records), len(want))
		}
	}
}
