package fxdist_test

import (
	"testing"

	"fxdist"
)

// auditSetup builds the paper's §4 adversarial setting at the facade: a
// 2×2×2 bucket grid over M=4 devices. On this grid FX is strict optimal
// for the query class leaving fields a and b unspecified (shape "**s"),
// while Modulo overloads one device for the class leaving a and c
// unspecified (shape "*s*") — two coordinate pairs collide mod 4. The
// file carries no records: the audit judges qualified-bucket placement,
// not data volume.
func auditSetup(t *testing.T) (file *fxdist.File, fx *fxdist.FX, mod *fxdist.Modulo, fxPM, modPM fxdist.PartialMatch) {
	t.Helper()
	file, err := fxdist.NewFile(fxdist.Schema{Fields: []string{"a", "b", "c"}, Depths: []int{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fxdist.NewFileSystem([]int{2, 2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fx, err = fxdist.NewFX(fs); err != nil {
		t.Fatal(err)
	}
	mod = fxdist.NewModulo(fs)
	if fxPM, err = file.Spec(map[string]string{"c": "x"}); err != nil {
		t.Fatal(err)
	}
	if modPM, err = file.Spec(map[string]string{"b": "x"}); err != nil {
		t.Fatal(err)
	}
	return file, fx, mod, fxPM, modPM
}

// shapeAudit finds one (backend, shape) row of the optimality report.
func shapeAudit(t *testing.T, backend, shape string) fxdist.ShapeAudit {
	t.Helper()
	for _, rep := range fxdist.OptimalityReport() {
		if rep.Backend != backend {
			continue
		}
		for _, s := range rep.Shapes {
			if s.Shape == shape {
				return s
			}
		}
	}
	t.Fatalf("no audit row for backend %q shape %q", backend, shape)
	return fxdist.ShapeAudit{}
}

// TestOptimalityReportAcrossBackends drives the strict-optimal FX shape
// and the adversarial Modulo shape through all four retrieval backends
// and asserts OptimalityReport keeps them apart per (backend, shape):
// FX's shape audits clean everywhere, Modulo's shape reports a nonzero
// deviation that never exceeds |R(q)| - bound.
func TestOptimalityReportAcrossBackends(t *testing.T) {
	fxdist.ResetAudit()
	file, fx, mod, fxPM, modPM := auditSetup(t)

	backends := map[string]func(alloc fxdist.GroupAllocator, pm fxdist.PartialMatch) error{
		"memory": func(alloc fxdist.GroupAllocator, pm fxdist.PartialMatch) error {
			c, err := fxdist.Open(fxdist.Config{File: file, Allocator: alloc})
			if err != nil {
				return err
			}
			_, err = c.Retrieve(pm)
			return err
		},
		"durable": func(alloc fxdist.GroupAllocator, pm fxdist.PartialMatch) error {
			c, err := fxdist.Open(fxdist.Config{Dir: t.TempDir(), File: file, Allocator: alloc},
				fxdist.WithCostModel(fxdist.ParallelDisk))
			if err != nil {
				return err
			}
			defer c.Close()
			_, err = c.Retrieve(pm)
			return err
		},
		"replicated": func(alloc fxdist.GroupAllocator, pm fxdist.PartialMatch) error {
			c, err := fxdist.Open(fxdist.Config{File: file, Allocator: alloc},
				fxdist.WithReplication(fxdist.ChainedFailover))
			if err != nil {
				return err
			}
			_, err = c.Retrieve(pm)
			return err
		},
		"netdist": func(alloc fxdist.GroupAllocator, pm fxdist.PartialMatch) error {
			addrs, stop, err := fxdist.DeployLocal(file, alloc)
			if err != nil {
				return err
			}
			defer stop()
			coord, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs})
			if err != nil {
				return err
			}
			defer coord.Close()
			_, err = coord.Retrieve(pm)
			return err
		},
	}
	for backend, retrieve := range backends {
		if err := retrieve(fx, fxPM); err != nil {
			t.Fatalf("%s retrieve with FX: %v", backend, err)
		}
		if err := retrieve(mod, modPM); err != nil {
			t.Fatalf("%s retrieve with Modulo: %v", backend, err)
		}
	}

	for backend := range backends {
		opt := shapeAudit(t, backend, "**s")
		if opt.Violations != 0 || opt.MaxDeviation != 0 {
			t.Errorf("%s/**s (FX): %d violations, max deviation %d; want strict optimal",
				backend, opt.Violations, opt.MaxDeviation)
		}
		if opt.Queries != 1 || opt.RQ != 4 || opt.M != 4 || opt.Bound != 1 {
			t.Errorf("%s/**s row wrong: %+v (want 1 query, |R(q)|=4, M=4, bound 1)", backend, opt)
		}

		bad := shapeAudit(t, backend, "*s*")
		if bad.Violations == 0 {
			t.Errorf("%s/*s* (Modulo): no violations reported on the adversarial shape", backend)
		}
		if bad.MaxDeviation <= 0 || bad.MaxDeviation > bad.RQ-bad.Bound {
			t.Errorf("%s/*s*: max deviation %d outside (0, |R(q)|-bound=%d]",
				backend, bad.MaxDeviation, bad.RQ-bad.Bound)
		}
		if bad.WorstDevice < 0 || bad.WorstDevice >= bad.M {
			t.Errorf("%s/*s*: worst device %d outside [0,%d)", backend, bad.WorstDevice, bad.M)
		}
		if bad.MaxBuckets != bad.Bound+bad.MaxDeviation {
			t.Errorf("%s/*s*: max device buckets %d != bound %d + deviation %d",
				backend, bad.MaxBuckets, bad.Bound, bad.MaxDeviation)
		}
	}
}
