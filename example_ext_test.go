package fxdist_test

import (
	"fmt"
	"time"

	"fxdist"
)

// ExampleDesignDepths solves the directory design problem the paper
// inherits from Aho-Ullman: give bits to often-specified fields.
func ExampleDesignDepths() {
	res, _ := fxdist.DesignDepths(8, []fxdist.DesignField{
		{SpecProb: 0.9}, // hot: queries almost always specify it
		{SpecProb: 0.5},
		{SpecProb: 0.1}, // cold: rarely specified
	})
	fmt.Println("depths:", res.Depths)
	fmt.Println("sizes: ", res.Sizes())
	// Output:
	// depths: [6 2 0]
	// sizes:  [64 4 1]
}

// ExampleNewReplicaPlacement shows chained declustering absorbing a
// device failure with bounded load growth.
func ExampleNewReplicaPlacement() {
	fs, _ := fxdist.NewFileSystem([]int{16, 16}, 8)
	fx, _ := fxdist.NewFX(fs)
	p := fxdist.NewReplicaPlacement(fx, fxdist.ChainedFailover)
	_ = p.Fail(3)
	d := p.Degradation(fxdist.AllQuery(2))
	fmt.Printf("max load %d -> %d\n", d.HealthyMax, d.DegradedMax)
	// Output:
	// max load 32 -> 40
}

// ExampleRunQueue simulates two back-to-back whole-file queries on
// parallel disks: the second queues behind the first.
func ExampleRunQueue() {
	fs, _ := fxdist.NewFileSystem([]int{4, 4}, 16)
	fx, _ := fxdist.NewFX(fs)
	queries := []fxdist.Query{fxdist.AllQuery(2), fxdist.AllQuery(2)}
	jobs, _ := fxdist.JobsFromQueries(fx, queries, fxdist.UniformArrivals(2, time.Millisecond))
	stats, _ := fxdist.RunQueue(jobs, fxdist.ParallelDisk)
	fmt.Println(stats.PerQuery[0].Response, stats.PerQuery[1].Response)
	// Output:
	// 29ms 57ms
}

// ExampleNewButterfly routes one message through the simulated Butterfly
// interconnect.
func ExampleNewButterfly() {
	nw, _ := fxdist.NewButterfly(8)
	stats, _ := nw.Run([]fxdist.NetworkMessage{{Src: 5, Dst: 2}})
	fmt.Printf("%d stages, delivered in %d cycles\n", nw.Stages(), stats.Cycles)
	// Output:
	// 3 stages, delivered in 4 cycles
}

// ExampleMSweep quantifies the paper's closing caveat: FX optimality as
// the machine grows past fixed directory sizes.
func ExampleMSweep() {
	pts, _ := fxdist.MSweep([]int{8, 8, 8, 8}, []int{8, 64}, fxdist.FamilyIU2)
	for _, p := range pts {
		fmt.Printf("M=%d FX=%.1f%% Modulo=%.1f%%\n", p.M, p.FXExactPct, p.ModuloExactPct)
	}
	// Output:
	// M=8 FX=100.0% Modulo=100.0%
	// M=64 FX=93.8% Modulo=31.2%
}

// ExampleRecommendMethod picks a declustering method for an observed
// workload.
func ExampleRecommendMethod() {
	fs, _ := fxdist.NewFileSystem([]int{4, 4, 8}, 32)
	fx, _ := fxdist.NewFX(fs)
	md := fxdist.NewModulo(fs)
	rec, _ := fxdist.RecommendMethod([]fxdist.GroupAllocator{md, fx}, []float64{0.5, 0.5, 0.5})
	fmt.Println(rec.Name)
	// Output:
	// FX[IU2 U I]
}

// ExamplePlanMigration costs a re-declustering: how many buckets move
// when a Modulo file adopts FX.
func ExamplePlanMigration() {
	fs, _ := fxdist.NewFileSystem([]int{4, 4}, 16)
	md := fxdist.NewModulo(fs)
	fx, _ := fxdist.NewFX(fs)
	plan, _ := fxdist.PlanMigration(md, fx)
	fmt.Printf("%d of %d buckets move\n", plan.Moved, plan.Total)
	// Output:
	// 12 of 16 buckets move
}
