#!/bin/sh
# bench.sh — snapshot the repository's headline benchmarks into a
# dated JSON file (BENCH_<YYYY-MM-DD>.json in the repo root) so perf
# regressions are visible across PRs.
#
# Usage: scripts/bench.sh [-count N] [-benchtime D] [output.json]
set -eu

cd "$(dirname "$0")/.."

COUNT=3
BENCHTIME=1s
OUT=""
while [ $# -gt 0 ]; do
	case "$1" in
	-count) COUNT="$2"; shift 2 ;;
	-benchtime) BENCHTIME="$2"; shift 2 ;;
	*) OUT="$1"; shift ;;
	esac
done
DATE=$(date +%Y-%m-%d)
# Default output is keyed by date and never overwrites an existing
# snapshot: a second run on the same day writes BENCH_<date>.2.json,
# then .3, ... An explicit output argument is used verbatim.
if [ -z "$OUT" ]; then
	OUT="BENCH_${DATE}.json"
	N=2
	while [ -e "$OUT" ]; do
		OUT="BENCH_${DATE}.${N}.json"
		N=$((N + 1))
	done
fi

PATTERN='^(BenchmarkAddressFX|BenchmarkInverseMapping|BenchmarkClusterRetrieve|BenchmarkBatchRetrieve|BenchmarkDistributedRetrieve|BenchmarkDurableRetrieve|BenchmarkDurableBulkLoad|BenchmarkPlanCache|BenchmarkRetrieveWithInjectedLatency)'
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "running go test -bench '$PATTERN' -benchtime $BENCHTIME -count $COUNT ..." >&2
go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem . | tee "$RAW" >&2

GOVERSION=$(go version | sed 's/^go version //')
COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

# Fold repeated -count runs of each benchmark into mean ns/op, B/op,
# allocs/op, and emit one JSON object per benchmark.
awk -v date="$DATE" -v gover="$GOVERSION" -v commit="$COMMIT" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)          # strip -GOMAXPROCS suffix
	runs[name]++
	iters[name] += $2
	for (i = 3; i < NF; i++) {
		if ($(i+1) == "ns/op")     ns[name] += $i
		if ($(i+1) == "B/op")      bytes[name] += $i
		if ($(i+1) == "allocs/op") allocs[name] += $i
	}
}
END {
	printf "{\n"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"go\": \"%s\",\n", gover
	printf "  \"commit\": \"%s\",\n", commit
	printf "  \"benchmarks\": [\n"
	n = 0
	for (name in runs) order[++n] = name
	# stable output: sort names
	for (i = 1; i <= n; i++)
		for (j = i + 1; j <= n; j++)
			if (order[j] < order[i]) { t = order[i]; order[i] = order[j]; order[j] = t }
	for (i = 1; i <= n; i++) {
		name = order[i]
		printf "    {\"name\": \"%s\", \"runs\": %d, \"iterations\": %d, \"ns_per_op\": %.1f", \
			name, runs[name], iters[name], ns[name] / runs[name]
		if (name in bytes)  printf ", \"bytes_per_op\": %.1f", bytes[name] / runs[name]
		if (name in allocs) printf ", \"allocs_per_op\": %.1f", allocs[name] / runs[name]
		printf "}%s\n", (i < n ? "," : "")
	}
	printf "  ]\n}\n"
}' "$RAW" >"$OUT"

echo "wrote $OUT" >&2
