//go:build ignore

// Command apicheck is a vet-style audit of the public API's naming
// conventions, run in CI (`go run scripts/apicheck.go`). It parses the
// public packages (the root fxdist package and client/) and enforces:
//
//  1. Functional-option constructors are named With*/Without*: every
//     exported function returning a single *Option-typed result must
//     carry the prefix, and every With*/Without* function must return
//     exactly one *Option-typed result.
//  2. Without* constructors take no parameters (parameters belong on
//     the With* form) and either pair with a With* of the same suffix
//     or say in their doc comment what default they disable.
//  3. Context-first signatures: when an exported function or method
//     takes a context.Context, it is the first parameter.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

var dirs = []string{".", "client"}

func main() {
	var problems []string
	for _, dir := range dirs {
		probs, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
		problems = append(problems, probs...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "apicheck:", p)
		}
		os.Exit(1)
	}
	fmt.Println("apicheck: public API conventions hold")
}

func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	withNames := map[string]bool{}
	type withoutFn struct {
		name, pos, doc string
		params         int
	}
	var withouts []withoutFn

	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !fn.Name.IsExported() {
					continue
				}
				pos := fset.Position(fn.Pos()).String()
				name := fn.Name.Name
				isCtor := fn.Recv == nil
				optRet := isCtor && returnsSingleOption(fn)

				if isCtor && strings.HasPrefix(name, "With") {
					if !optRet {
						problems = append(problems,
							fmt.Sprintf("%s: %s is With*-named but does not return a single *Option type", pos, name))
					}
					if strings.HasPrefix(name, "Without") {
						if fn.Type.Params.NumFields() > 0 {
							problems = append(problems,
								fmt.Sprintf("%s: %s takes parameters; Without* disables a default and must be parameterless", pos, name))
						}
						withouts = append(withouts, withoutFn{
							name: name, pos: pos, doc: fn.Doc.Text(),
							params: fn.Type.Params.NumFields(),
						})
					} else {
						withNames[name] = true
					}
				} else if optRet {
					problems = append(problems,
						fmt.Sprintf("%s: %s returns an *Option type but is not named With*/Without*", pos, name))
				}

				if p := contextParamIndex(fn); p > 0 {
					problems = append(problems,
						fmt.Sprintf("%s: %s takes context.Context as parameter %d; context must come first", pos, name, p+1))
				}
			}
		}
	}
	for _, wo := range withouts {
		suffix := strings.TrimPrefix(wo.name, "Without")
		if withNames["With"+suffix] {
			continue
		}
		if strings.Contains(strings.ToLower(wo.doc), "disable") {
			continue
		}
		problems = append(problems,
			fmt.Sprintf("%s: %s has no With%s pair and its doc does not say what default it disables", wo.pos, wo.name, suffix))
	}
	return problems, nil
}

// returnsSingleOption reports whether fn returns exactly one result
// whose type name ends in "Option".
func returnsSingleOption(fn *ast.FuncDecl) bool {
	res := fn.Type.Results
	if res == nil || res.NumFields() != 1 || len(res.List[0].Names) > 1 {
		return false
	}
	return strings.HasSuffix(typeName(res.List[0].Type), "Option")
}

// contextParamIndex returns the index of a context.Context parameter,
// or -1 / 0 when absent or already first.
func contextParamIndex(fn *ast.FuncDecl) int {
	idx := 0
	for _, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if typeName(field.Type) == "context.Context" {
			if idx == 0 {
				return 0
			}
			return idx
		}
		idx += n
	}
	return -1
}

func typeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return typeName(t.X) + "." + t.Sel.Name
	case *ast.StarExpr:
		return typeName(t.X)
	}
	return ""
}
