//go:build ignore

// Command fxgate_smoke is the CI smoke test for the serving tier: it
// builds a snapshot, starts fxnode device servers and an fxgate in
// front of them as real processes, then drives the public JSON-RPC
// surface the way an external client would — single retrieve, batch,
// explain, health, an unauthenticated probe — and scrapes
// /debug/tenants. It fails on any unexpected HTTP status or on schema
// drift in the response envelopes (missing jsonrpc/api_version fields,
// wrong tenant rows).
//
//	go run scripts/fxgate_smoke.go
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"fxdist"
)

const (
	tenantKey  = "smoke-key"
	tenantName = "smoke"
	m          = 4
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fxgate_smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("fxgate_smoke: PASS")
}

func run() error {
	work, err := os.MkdirTemp("", "fxgate-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// Build the snapshot the servers and the gate share.
	snap := filepath.Join(work, "parts.snap")
	if err := buildSnapshot(snap); err != nil {
		return fmt.Errorf("build snapshot: %w", err)
	}
	tenants := filepath.Join(work, "tenants.json")
	tj := fmt.Sprintf(`[{"name":%q,"api_key":%q,"rate_per_sec":1000,"burst":1000}]`, tenantName, tenantKey)
	if err := os.WriteFile(tenants, []byte(tj), 0o644); err != nil {
		return err
	}

	// Build the binaries once; `go run` per process would race on the
	// build cache and slow the job down.
	bin := filepath.Join(work, "bin")
	for _, tool := range []string{"fxnode", "fxgate"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("build %s: %w", tool, err)
		}
	}

	// One fxnode per device, with shedding armed (exercises the flag).
	var procs []*exec.Cmd
	defer func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
				p.Wait()
			}
		}
	}()
	var addrs []string
	for dev := 0; dev < m; dev++ {
		addr, err := freeAddr()
		if err != nil {
			return err
		}
		addrs = append(addrs, addr)
		cmd := exec.Command(filepath.Join(bin, "fxnode"), "serve",
			"-snapshot", snap, "-device", fmt.Sprint(dev), "-listen", addr,
			"-shed-inflight", "64", "-log-level", "warn")
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start fxnode %d: %w", dev, err)
		}
		procs = append(procs, cmd)
	}
	for _, addr := range addrs {
		if err := waitTCP(addr, 10*time.Second); err != nil {
			return fmt.Errorf("fxnode %s never listened: %w", addr, err)
		}
	}

	gateAddr, err := freeAddr()
	if err != nil {
		return err
	}
	gateCmd := exec.Command(filepath.Join(bin, "fxgate"),
		"-snapshot", snap, "-addrs", strings.Join(addrs, ","),
		"-tenants", tenants, "-listen", gateAddr, "-log-level", "warn")
	gateCmd.Stdout = os.Stdout
	gateCmd.Stderr = os.Stderr
	if err := gateCmd.Start(); err != nil {
		return fmt.Errorf("start fxgate: %w", err)
	}
	procs = append(procs, gateCmd)
	if err := waitTCP(gateAddr, 10*time.Second); err != nil {
		return fmt.Errorf("fxgate never listened: %w", err)
	}
	base := "http://" + gateAddr

	// fx.health first: proves the gate resolved the backend.
	var health struct {
		APIVersion string   `json:"api_version"`
		Status     string   `json:"status"`
		Backend    string   `json:"backend"`
		M          int      `json:"m"`
		Fields     []string `json:"fields"`
	}
	if err := call(base, tenantKey, "fx.health", nil, &health); err != nil {
		return fmt.Errorf("fx.health: %w", err)
	}
	if health.APIVersion != "fx/v1" || health.Status != "ok" || health.Backend != "netdist" || health.M != m {
		return fmt.Errorf("fx.health drifted: %+v", health)
	}

	// Single retrieve.
	var ret struct {
		APIVersion          string  `json:"api_version"`
		Records             [][]any `json:"records"`
		DeviceBuckets       []int   `json:"device_buckets"`
		LargestResponseSize int     `json:"largest_response_size"`
	}
	params := map[string]any{"query": map[string]string{"supplier": "supplier-1"}}
	if err := call(base, tenantKey, "fx.retrieve", params, &ret); err != nil {
		return fmt.Errorf("fx.retrieve: %w", err)
	}
	if ret.APIVersion != "fx/v1" || len(ret.DeviceBuckets) != m {
		return fmt.Errorf("fx.retrieve envelope drifted: %+v", ret)
	}

	// Batch retrieve: two queries, both must come back with results.
	var batch struct {
		APIVersion string `json:"api_version"`
		Items      []struct {
			Result json.RawMessage `json:"result"`
			Error  json.RawMessage `json:"error"`
		} `json:"items"`
	}
	bp := map[string]any{"queries": []map[string]string{
		{"supplier": "supplier-1"},
		{"warehouse": "warehouse-2"},
	}}
	if err := call(base, tenantKey, "fx.retrieveBatch", bp, &batch); err != nil {
		return fmt.Errorf("fx.retrieveBatch: %w", err)
	}
	if batch.APIVersion != "fx/v1" || len(batch.Items) != 2 {
		return fmt.Errorf("fx.retrieveBatch envelope drifted: %+v", batch)
	}
	for i, item := range batch.Items {
		if len(item.Result) == 0 || len(item.Error) != 0 {
			return fmt.Errorf("batch item %d failed: %s", i, item.Error)
		}
	}

	// fx.explain: the bound invariant must hold on the wire.
	var ex struct {
		APIVersion string `json:"api_version"`
		Shape      string `json:"shape"`
		RQ         int    `json:"rq"`
		Bound      int    `json:"bound"`
		M          int    `json:"m"`
	}
	if err := call(base, tenantKey, "fx.explain", params, &ex); err != nil {
		return fmt.Errorf("fx.explain: %w", err)
	}
	if ex.APIVersion != "fx/v1" || ex.M != m || ex.Bound != (ex.RQ+m-1)/m {
		return fmt.Errorf("fx.explain drifted: %+v", ex)
	}

	// Unauthenticated probes must bounce with 401.
	status, _, err := post(base+"/rpc", "", `{"jsonrpc":"2.0","id":1,"method":"fx.health"}`)
	if err != nil {
		return err
	}
	if status != http.StatusUnauthorized {
		return fmt.Errorf("unauthenticated probe got %d, want 401", status)
	}

	// /debug/tenants must show the tenant's rows.
	res, err := http.Get(base + "/debug/tenants")
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/tenants status %d", res.StatusCode)
	}
	var doc struct {
		Tenants []struct {
			Name     string `json:"name"`
			Requests uint64 `json:"requests"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		return fmt.Errorf("/debug/tenants decode: %w", err)
	}
	if len(doc.Tenants) != 1 || doc.Tenants[0].Name != tenantName || doc.Tenants[0].Requests < 4 {
		return fmt.Errorf("/debug/tenants drifted: %+v", doc)
	}
	return nil
}

func buildSnapshot(path string) error {
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "part", Cardinality: 100},
		{Name: "supplier", Cardinality: 20},
		{Name: "warehouse", Cardinality: 8},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{3, 2, 2}))
	if err != nil {
		return err
	}
	records, err := fxdist.GenerateRecords(spec, 600, 11)
	if err != nil {
		return err
	}
	for _, r := range records {
		if err := file.Insert(r); err != nil {
			return err
		}
	}
	fs, err := file.FileSystem(m)
	if err != nil {
		return err
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		return err
	}
	return fxdist.SaveSnapshotFile(path, file, fx)
}

// call posts one JSON-RPC frame and decodes its result, failing on
// non-200, a JSON-RPC error, or a missing envelope.
func call(base, key, method string, params any, out any) error {
	frame := map[string]any{"jsonrpc": "2.0", "id": 1, "method": method}
	if params != nil {
		frame["params"] = params
	}
	body, err := json.Marshal(frame)
	if err != nil {
		return err
	}
	status, data, err := post(base+"/rpc", key, string(body))
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("HTTP %d: %.300s", status, data)
	}
	var res struct {
		JSONRPC string          `json:"jsonrpc"`
		Result  json.RawMessage `json:"result"`
		Error   json.RawMessage `json:"error"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("bad envelope %.300s: %w", data, err)
	}
	if res.JSONRPC != "2.0" {
		return fmt.Errorf("envelope missing jsonrpc 2.0: %.300s", data)
	}
	if len(res.Error) != 0 {
		return fmt.Errorf("rpc error: %s", res.Error)
	}
	return json.Unmarshal(res.Result, out)
}

func post(url, key, body string) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		return 0, nil, err
	}
	return res.StatusCode, buf.Bytes(), nil
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func waitTCP(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			c.Close()
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("timeout after %v", timeout)
}
