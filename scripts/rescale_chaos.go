//go:build ignore

// Command rescale_chaos is the CI crash-recovery test for live
// rescaling: it deploys a real fxnode fleet from a snapshot, starts a
// live 4 -> 8 grow through `fxnode rescale`, SIGKILLs the coordinating
// process mid-migration (as soon as the journal records progress), and
// verifies that
//
//  1. the cluster keeps answering queries byte-identically from the old
//     epoch through the crash (zero downtime),
//  2. re-running the same command against the same journal resumes the
//     migration instead of restarting it, and
//  3. after cutover a fresh coordinator pinned to the new epoch answers
//     every query byte-identically to the single-device reference.
//
//	go run scripts/rescale_chaos.go
package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"fxdist"
	"fxdist/internal/persist"
)

const (
	oldM = 4
	newM = 8
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rescale_chaos: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("rescale_chaos: PASS")
}

func run() error {
	work, err := os.MkdirTemp("", "rescale-chaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// Enough buckets that the copy phase has a real window to die in:
	// depths {4,3,2} give 512 buckets, half of which move on a grow.
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "part", Cardinality: 500},
		{Name: "supplier", Cardinality: 80},
		{Name: "warehouse", Cardinality: 16},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{4, 3, 2}))
	if err != nil {
		return err
	}
	records, err := fxdist.GenerateRecords(spec, 6000, 33)
	if err != nil {
		return err
	}
	for _, r := range records {
		if err := file.Insert(r); err != nil {
			return err
		}
	}
	fs, err := file.FileSystem(oldM)
	if err != nil {
		return err
	}
	fx, err := fxdist.NewFX(fs)
	if err != nil {
		return err
	}
	snap := filepath.Join(work, "file.snap")
	if err := fxdist.SaveSnapshotFile(snap, file, fx); err != nil {
		return err
	}

	// The old fleet and the empty rescale targets run in-process: the
	// chaos is aimed at the coordinator, the devices stay up throughout.
	addrs, stopOld, err := fxdist.DeployLocal(file, fx)
	if err != nil {
		return err
	}
	defer stopOld()
	aspec, err := fxdist.DescribeAllocator(fx)
	if err != nil {
		return err
	}
	newSpec, err := aspec.Rescaled(newM)
	if err != nil {
		return err
	}
	newAddrs := append([]string(nil), addrs...)
	for dev := oldM; dev < newM; dev++ {
		srv, err := fxdist.NewRescaleTargetServer(dev, newSpec, 1)
		if err != nil {
			return err
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srv.Close()
		newAddrs = append(newAddrs, l.Addr().String())
		go srv.Serve(l) //nolint:errcheck // ends when srv.Close closes l
	}

	// Reference answers from the single-device search.
	queries := []map[string]string{
		{"supplier": "supplier-3"},
		{"warehouse": "warehouse-7"},
		{"part": "part-11"},
		{"supplier": "supplier-9", "warehouse": "warehouse-2"},
	}
	var pms []fxdist.PartialMatch
	var want [][]string
	for _, pairs := range queries {
		pm, err := file.Spec(pairs)
		if err != nil {
			return err
		}
		pms = append(pms, pm)
		recs, err := file.Search(pm)
		if err != nil {
			return err
		}
		want = append(want, canonical(recs))
	}

	bin := filepath.Join(work, "fxnode")
	build := exec.Command("go", "build", "-o", bin, "./cmd/fxnode")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build fxnode: %w", err)
	}
	journal := filepath.Join(work, "rescale.journal")
	rescaleArgs := []string{"rescale", "-action", "start",
		"-snapshot", snap,
		"-addrs", strings.Join(addrs, ","),
		"-new-addrs", strings.Join(newAddrs, ","),
		"-new-m", fmt.Sprint(newM),
		"-journal", journal,
		"-concurrency", "1",
		"-guard-queries", "2",
		"-status-every", "25ms",
		"-log-level", "off",
	}

	// Run 1: kill the coordinator as soon as the journal records
	// progress — mid-migration by construction.
	first := exec.Command(bin, rescaleArgs...)
	first.Stdout = os.Stdout
	first.Stderr = os.Stderr
	if err := first.Start(); err != nil {
		return err
	}
	// Ideally the kill lands with a partial copy set journalled (the
	// driver flushes every 64 buckets); settle for any journal at all if
	// the window is too tight on this machine.
	deadline := time.Now().Add(30 * time.Second)
	partialBy := time.Now().Add(10 * time.Second)
	for {
		if st, err := persist.LoadRescale(journal); err == nil {
			if len(st.Done) > 0 || time.Now().After(partialBy) {
				break
			}
		}
		if time.Now().After(deadline) {
			first.Process.Kill()
			first.Wait()
			return fmt.Errorf("journal %s never appeared; rescale did not start", journal)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := first.Process.Signal(syscall.SIGKILL); err != nil {
		return fmt.Errorf("SIGKILL coordinator: %w", err)
	}
	err = first.Wait()
	if err == nil {
		return fmt.Errorf("coordinator exited cleanly before the kill; no crash was tested")
	}
	fmt.Printf("rescale_chaos: coordinator killed mid-migration (%v)\n", err)

	// The journal must record an unfinished migration.
	st, err := persist.LoadRescale(journal)
	if err != nil {
		return fmt.Errorf("load journal after kill: %w", err)
	}
	if st.Phase == persist.RescaleDone {
		return fmt.Errorf("journal already records phase %q; the kill landed too late", st.Phase)
	}
	fmt.Printf("rescale_chaos: journal holds phase %q, %d buckets copied\n", st.Phase, len(st.Done))

	// Zero downtime: the old epoch answers byte-identically right now,
	// with the fleet mid-migration and the coordinator dead.
	cl, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs})
	if err != nil {
		return fmt.Errorf("dial old epoch after crash: %w", err)
	}
	if err := checkAnswers(cl, pms, want, "old epoch after crash"); err != nil {
		cl.Close()
		return err
	}
	cl.Close()

	// Run 2: same command, same journal — must resume and complete.
	second := exec.Command(bin, rescaleArgs...)
	out := &strings.Builder{}
	second.Stdout = out
	second.Stderr = os.Stderr
	if err := second.Run(); err != nil {
		return fmt.Errorf("resumed rescale failed: %w\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "rescale complete") {
		return fmt.Errorf("resumed run finished without completing the rescale:\n%s", out.String())
	}
	fmt.Print(out.String())
	if st, err := persist.LoadRescale(journal); err != nil {
		return fmt.Errorf("load journal after resume: %w", err)
	} else if st.Phase != persist.RescaleDone {
		return fmt.Errorf("journal records phase %q after resume, want done", st.Phase)
	}

	// Post-cutover: a fresh coordinator pinned to the new epoch answers
	// byte-identically over all 8 devices.
	ncl, err := fxdist.Open(fxdist.Config{File: file, Addrs: newAddrs}, fxdist.WithDialEpoch(1))
	if err != nil {
		return fmt.Errorf("dial new epoch: %w", err)
	}
	defer ncl.Close()
	return checkAnswers(ncl, pms, want, "new epoch after resume")
}

func checkAnswers(cl *fxdist.Cluster, pms []fxdist.PartialMatch, want [][]string, what string) error {
	for i, pm := range pms {
		res, err := cl.Retrieve(pm)
		if err != nil {
			return fmt.Errorf("%s: query %d: %w", what, i, err)
		}
		got := canonical(res.Records)
		if len(got) != len(want[i]) {
			return fmt.Errorf("%s: query %d: %d records, want %d", what, i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				return fmt.Errorf("%s: query %d: record %d differs", what, i, j)
			}
		}
	}
	fmt.Printf("rescale_chaos: %s: %d queries byte-identical\n", what, len(pms))
	return nil
}

func canonical(recs []fxdist.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = strings.Join(r, "\x00")
	}
	sort.Strings(out)
	return out
}
