package fxdist_test

import (
	"context"
	"sort"
	"testing"

	"fxdist"
)

// The four retrieval backends — in-memory simulated cluster, disk-backed
// durable cluster, replicated cluster (all devices healthy), and
// TCP-distributed coordinator over a replicated loopback deployment —
// must all agree with the single-device reference search on the same
// file, allocator and query mix, and must report identical per-device
// bucket counts: they all retrieve through the shared engine executor
// and derive their bucket sets from the same inverse mapping.
func TestRetrievalPathsAgree(t *testing.T) {
	// The differential sweep runs once per declustering method: the
	// backends must agree regardless of which allocator partitions the
	// file, including the latin-square DHW baseline.
	t.Run("fx", func(t *testing.T) {
		retrievalPathsAgree(t, func(fs fxdist.FileSystem) (fxdist.GroupAllocator, error) {
			return fxdist.NewFX(fs)
		})
	})
	t.Run("dhw", func(t *testing.T) {
		retrievalPathsAgree(t, func(fs fxdist.FileSystem) (fxdist.GroupAllocator, error) {
			return fxdist.NewDHW(fs), nil
		})
	})
}

func retrievalPathsAgree(t *testing.T, newAlloc func(fxdist.FileSystem) (fxdist.GroupAllocator, error)) {
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "part", Cardinality: 400},
		{Name: "supplier", Cardinality: 60},
		{Name: "warehouse", Cardinality: 12},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{4, 3, 2}))
	if err != nil {
		t.Fatal(err)
	}
	records, err := fxdist.GenerateRecords(spec, 2000, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := file.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := file.FileSystem(8)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := newAlloc(fs)
	if err != nil {
		t.Fatal(err)
	}

	mem, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx})
	if err != nil {
		t.Fatal(err)
	}
	dur, err := fxdist.Open(fxdist.Config{Dir: t.TempDir(), File: file, Allocator: fx})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()
	repl, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx},
		fxdist.WithReplication(fxdist.ChainedFailover))
	if err != nil {
		t.Fatal(err)
	}
	addrs, stop, err := fxdist.DeployReplicatedLocal(file, fx)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	net, err := fxdist.Open(fxdist.Config{File: file, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	pms, err := fxdist.GeneratePartialMatches(spec, 25, 0.45, 22)
	if err != nil {
		t.Fatal(err)
	}
	key := func(r fxdist.Record) string { return r[0] + "|" + r[1] + "|" + r[2] }
	keysOf := func(recs []fxdist.Record) []string {
		out := make([]string, len(recs))
		for i, r := range recs {
			out[i] = key(r)
		}
		sort.Strings(out)
		return out
	}

	for qi, pm := range pms {
		want, err := file.Search(pm)
		if err != nil {
			t.Fatal(err)
		}
		wantKeys := keysOf(want)

		memRes, err := mem.Retrieve(pm)
		if err != nil {
			t.Fatal(err)
		}
		durRes, err := dur.Retrieve(pm)
		if err != nil {
			t.Fatal(err)
		}
		replRes, err := repl.Retrieve(pm)
		if err != nil {
			t.Fatal(err)
		}
		netRes, err := net.Retrieve(pm)
		if err != nil {
			t.Fatal(err)
		}

		for name, got := range map[string][]fxdist.Record{
			"memory":      memRes.Records,
			"durable":     durRes.Records,
			"replicated":  replRes.Records,
			"distributed": netRes.Records,
		} {
			gotKeys := keysOf(got)
			if len(gotKeys) != len(wantKeys) {
				t.Fatalf("query %d via %s: %d records, want %d", qi, name, len(gotKeys), len(wantKeys))
			}
			for i := range wantKeys {
				if gotKeys[i] != wantKeys[i] {
					t.Fatalf("query %d via %s: record sets differ", qi, name)
				}
			}
		}
		for d := 0; d < 8; d++ {
			if memRes.DeviceBuckets[d] != durRes.DeviceBuckets[d] ||
				memRes.DeviceBuckets[d] != replRes.DeviceBuckets[d] ||
				memRes.DeviceBuckets[d] != netRes.DeviceBuckets[d] {
				t.Fatalf("query %d device %d: bucket counts diverge (%d/%d/%d/%d)",
					qi, d, memRes.DeviceBuckets[d], durRes.DeviceBuckets[d],
					replRes.DeviceBuckets[d], netRes.DeviceBuckets[d])
			}
		}
	}

	// The batch API must agree with one-at-a-time retrieval on every
	// backend that exposes it.
	ctx := context.Background()
	batch, err := mem.RetrieveBatch(ctx, pms)
	if err != nil {
		t.Fatal(err)
	}
	netBatch, err := net.RetrieveBatch(ctx, pms)
	if err != nil {
		t.Fatal(err)
	}
	for qi, pm := range pms {
		want, err := file.Search(pm)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[qi].Records) != len(want) || len(netBatch[qi].Records) != len(want) {
			t.Fatalf("batch query %d: %d/%d records, want %d",
				qi, len(batch[qi].Records), len(netBatch[qi].Records), len(want))
		}
	}
}

// Snapshot + durable cluster round trip: a snapshot taken from a live
// file restores into a durable cluster that answers identically.
func TestSnapshotToDurablePipeline(t *testing.T) {
	spec := fxdist.RecordSpec{Fields: []fxdist.FieldSpec{
		{Name: "a", Cardinality: 100},
		{Name: "b", Cardinality: 40},
	}}
	file, err := fxdist.NewFile(fxdist.GenerateSchema(spec, []int{3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	records, err := fxdist.GenerateRecords(spec, 800, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := file.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	fs, _ := file.FileSystem(4)
	fx, _ := fxdist.NewFX(fs)

	path := t.TempDir() + "/file.snap"
	if err := fxdist.SaveSnapshotFile(path, file, fx); err != nil {
		t.Fatal(err)
	}
	restored, alloc, err := fxdist.LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dur, err := fxdist.Open(fxdist.Config{Dir: t.TempDir(), File: restored, Allocator: alloc})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Close()

	pm, err := file.Spec(map[string]string{"b": "b-7"})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := file.Search(pm)
	got, err := dur.Retrieve(pm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want) {
		t.Errorf("pipeline returned %d records, want %d", len(got.Records), len(want))
	}
}
