package fxdist

import (
	"fxdist/internal/netdist"
	"fxdist/internal/storage"
)

// This file keeps the pre-Open constructor zoo compiling. Each wrapper
// is a thin forward to the internal constructor Open itself uses, so
// old call sites behave identically — they just miss the functional
// options (plan-cache sizing, SLOs, failover policy) that only Open
// exposes.

// NewCluster distributes file's buckets over the allocator's devices.
//
// Deprecated: use Open(Config{File: file, Allocator: alloc},
// WithCostModel(model)) and the unified Cluster handle.
func NewCluster(file *File, alloc GroupAllocator, model CostModel) (*MemoryCluster, error) {
	return storage.NewCluster(file, alloc, model)
}

// NewReplicatedCluster distributes file's buckets with primary and backup
// copies under the given failover mode.
//
// Deprecated: use Open(Config{File: file, Allocator: alloc},
// WithReplication(mode), WithCostModel(model)).
func NewReplicatedCluster(file *File, alloc GroupAllocator, mode ReplicaMode, model CostModel) (*ReplicatedCluster, error) {
	return storage.NewReplicated(file, alloc, mode, model)
}

// CreateDurableCluster materialises file's buckets as per-device logs
// under dir and writes the metadata snapshot.
//
// Deprecated: use Open(Config{Dir: dir, File: file, Allocator: alloc},
// WithCostModel(model)).
func CreateDurableCluster(dir string, file *File, alloc GroupAllocator, model CostModel) (*DurableCluster, error) {
	return storage.CreateDurable(dir, file, alloc, model)
}

// OpenDurableCluster reopens a durable cluster; pass the same
// WithFieldHash options the original file was built with, if any.
//
// Deprecated: use Open(Config{Dir: dir}, WithCostModel(model),
// WithFileOptions(opts...)).
func OpenDurableCluster(dir string, model CostModel, opts ...FileOption) (*DurableCluster, error) {
	return storage.OpenDurable(dir, model, storage.WithFileOptions(opts...))
}

// DialCluster connects a coordinator to one server per device. The file
// supplies the schema and hash functions (it can be empty of records).
// Concurrent retrievals pipeline over the per-device connections.
//
// Deprecated: use Open(Config{File: file, Addrs: addrs},
// WithDialTimeout(d)).
func DialCluster(file *File, addrs []string, opts ...DialOption) (*Coordinator, error) {
	return netdist.Dial(file, addrs, opts...)
}
