package fxdist_test

import (
	"testing"

	"fxdist"
)

func TestPublicProjection(t *testing.T) {
	file := buildTestFile(t)
	fs, _ := file.FileSystem(4)
	fx, _ := fxdist.NewFX(fs)
	cluster, err := fxdist.Open(fxdist.Config{File: file, Allocator: fx})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := fxdist.NewButterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Memory().Project([]int{1}, nw)
	if err != nil {
		t.Fatal(err)
	}
	// Field "b" has cardinality 15: at most 15 distinct projections.
	if len(res.Rows) == 0 || len(res.Rows) > 15 {
		t.Errorf("projection rows = %d", len(res.Rows))
	}
	if res.GatherCycles == 0 {
		t.Error("network gather not costed")
	}
}

func TestPublicMSP(t *testing.T) {
	fs, _ := fxdist.NewFileSystem([]int{4, 4}, 8)
	msp := fxdist.NewMSP(fs)
	fx, _ := fxdist.NewFX(fs)
	rows := fxdist.ResponseTableExhaustive(fs,
		[]fxdist.Allocator{msp, fx}, []int{2})
	if rows[0].Avg[1] > rows[0].Avg[0]+1e-9 {
		t.Errorf("FX (%.2f) worse than MSP (%.2f)", rows[0].Avg[1], rows[0].Avg[0])
	}
	tab, err := fxdist.NewTableAllocator(fs, make([]int, fs.NumBuckets()))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Device([]int{0, 0}) != 0 {
		t.Error("table allocator wrong")
	}
}

func TestPublicDurableDeleteCompact(t *testing.T) {
	file := buildTestFile(t)
	fs, _ := file.FileSystem(4)
	fx, _ := fxdist.NewFX(fs)
	h, err := fxdist.Open(fxdist.Config{Dir: t.TempDir(), File: file, Allocator: fx})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	c := h.Durable()
	before := c.Len()
	rec := fxdist.Record{"a-1", "b-1"}
	if err := c.Insert(rec); err != nil {
		t.Fatal(err)
	}
	n, err := c.Delete(rec)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Errorf("deleted %d, want >= 1", n)
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if c.Len() > before {
		t.Errorf("Len %d after delete+compact, started at %d", c.Len(), before)
	}
	// In-memory file delete mirrors it.
	if err := file.Insert(rec); err != nil {
		t.Fatal(err)
	}
	if n, err := file.Delete(rec); err != nil || n < 1 {
		t.Errorf("file delete = %d, %v", n, err)
	}
}

func TestPublicLoadStats(t *testing.T) {
	fs, _ := fxdist.NewFileSystem([]int{4, 4}, 16)
	fx, _ := fxdist.NewFX(fs)
	md := fxdist.NewModulo(fs)
	st, err := fxdist.LoadStatsOf(fxdist.Loads(fx, fxdist.AllQuery(2)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Balance != 1 {
		t.Errorf("FX whole-file balance %.2f, want 1", st.Balance)
	}
	queries, _ := fxdist.GenerateBucketQueries(fs.Sizes, 50, 0.5, 3)
	fxBal, _ := fxdist.WorkloadBalance(fx, queries)
	mdBal, _ := fxdist.WorkloadBalance(md, queries)
	if fxBal <= mdBal {
		t.Errorf("FX balance %.3f not above Modulo %.3f", fxBal, mdBal)
	}
}
